//! Expansion of index launches and the exact dependence oracle.
//!
//! Before execution, the runtime expands the program's launches into point
//! tasks and computes the *exact* task-graph edges Legion's physical
//! analysis would discover: a dependency exists when a task accesses data
//! written (or reduced) by an earlier task with a conflicting privilege
//! (§2). The expansion also runs the hybrid safety analysis per launch
//! (§3–4) — caching verdicts per launch signature, as a compiler would per
//! source loop — and cross-validates it: a launch declared safe must
//! produce **zero** intra-launch dependencies, which is asserted.
//!
//! The expansion is structured as two cooperating pieces so the trace
//! recorder ([`crate::replay`]) can drive it op by op: an [`Expander`]
//! that materializes one op's tasks, verdict, and distribution plan, and
//! an [`Oracle`] holding the mutable dependence state (per-space access
//! records, the BVH overlap index, the reduction-epoch counter). A
//! repeated launch sequence lets the recorder skip both and splice in a
//! captured [`crate::replay::LaunchTrace`] instead.
//!
//! The *cost* of discovering these edges is charged by the executor
//! according to the §5 complexities; this module is only the semantic
//! oracle.

use crate::config::RuntimeConfig;
use crate::program::{FunctorId, Program};
use crate::replay::{Recorder, TraceMark, TraceReplayStats};
use crate::shard::{block_shard, point_at, ShardDomain, ShardingFn};
use il_analysis::{analyze_launch, HybridVerdict, LaunchArg};
use il_geometry::{Domain, DomainPoint};
use il_machine::NodeId;
use il_region::{
    overlap_volume, FieldId, IndexSpaceId, Privilege, RegionForest, RegionTreeId, ReductionOpId,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Reference to a task instance (index into [`ExpandedProgram::tasks`]).
pub type TaskRef = u32;

/// One expanded point task.
#[derive(Clone, Debug)]
pub struct TaskInstance {
    /// Index of the originating operation.
    pub op: u32,
    /// Iteration-order position within the launch domain.
    pub point_idx: u32,
    /// The launch-domain point.
    pub point: DomainPoint,
    /// Node the sharding/slicing assigned this task to.
    pub owner: NodeId,
    /// Concrete subspace selected by each region requirement's functor.
    pub subspaces: Vec<IndexSpaceId>,
    /// Per reduce-privilege requirement: for every field it folds into,
    /// the id of the reduction epoch it contributes to on its buffer.
    /// The executor identity-fills each (buffer, field, epoch) exactly
    /// once, at whichever epoch member happens to execute first — the
    /// members themselves stay unordered, as commutativity allows (no
    /// intra-epoch dependence edges exist).
    pub reduce_fill: Vec<Vec<(FieldId, u32)>>,
}

/// An incoming data movement for a task: copy (or reduction-fold) of the
/// overlap between a producer's subregion and one of this task's
/// requirements.
#[derive(Clone, Debug)]
pub struct CopyIn {
    /// The producing task.
    pub from: TaskRef,
    /// The producer's subregion (source instance key space).
    pub src_space: IndexSpaceId,
    /// Which of the consumer's requirements receives the data.
    pub dst_req: usize,
    /// The region tree the data lives in.
    pub tree: RegionTreeId,
    /// The fields moved: the producer's written fields intersected with
    /// the consumer's read fields.
    pub fields: Vec<il_region::FieldId>,
    /// Bytes moved (overlap volume × bytes per moved field).
    pub bytes: u64,
    /// `Some(op)` when the producer held a reduce privilege: apply as a
    /// fold instead of an overwrite.
    pub fold: Option<ReductionOpId>,
}

/// Per-launch safety verdict, after the hybrid analysis (and the dynamic
/// check, if one was needed and enabled).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpSafety {
    /// Statically proven safe (no runtime cost).
    Static,
    /// Proven safe by a dynamic check of this many functor evaluations
    /// (the O(|D|) cost of §4; charged only when checks are enabled).
    Dynamic {
        /// Functor evaluations the check performs.
        evals: u64,
    },
    /// Not index-launchable: executed as a loop of individual task
    /// launches regardless of the IDX setting.
    Sequential,
}

/// Host-side statistics of the launch-signature analysis cache for one
/// expansion. Purely observability: the cache never changes verdicts or
/// simulated time, only how much host work the expansion repeats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisCacheStats {
    /// True when the cache was enabled for this expansion.
    pub enabled: bool,
    /// Launches whose verdict was served from the cache.
    pub hits: u64,
    /// Launches that ran the full hybrid analysis.
    pub misses: u64,
    /// Dynamic-check functor evaluations that cache hits avoided
    /// re-running on the host (the `evals` of each hit's `Dynamic`
    /// verdict; the simulator still charges them when checks are on).
    pub evals_saved: u64,
    /// Hits served from a tenant's *warm* state — verdicts carried over
    /// from an earlier session of the same tenant running the same
    /// program (service mode only; always zero on the legacy path and
    /// on a tenant's first session).
    pub warm_hits: u64,
}

/// A tenant's carry-over expansion state in service mode: the verdict
/// cache and the surviving launch traces of that tenant's previous
/// sessions of the *same* program. Keyed per `(tenant, program)` by the
/// service — never shared across tenants, which is what keeps one
/// tenant's trace invalidations and cache contents invisible to another
/// (the per-tenant-isolation tier locks this). Purely host-side: seeding
/// warm state never changes verdicts, task graphs, or simulated time,
/// only how much analysis the expansion repeats.
#[derive(Default)]
pub struct WarmState {
    pub(crate) verdicts: HashMap<u64, OpSafety>,
    pub(crate) traces: Vec<crate::replay::LaunchTrace>,
}

impl WarmState {
    /// Empty warm state (a tenant's first session).
    pub fn new() -> Self {
        WarmState::default()
    }

    /// Cached verdicts currently held.
    pub fn verdict_count(&self) -> usize {
        self.verdicts.len()
    }

    /// Captured launch traces currently held.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }
}

/// Distribution plan of one operation, fixed at expansion time: the
/// sharding decision (tasks grouped by owner node) and the non-DCR slice
/// runs. Precomputing this here — rather than re-grouping inside the
/// executor — lets a captured trace replay the sharding and distribution
/// decisions verbatim alongside the dependence graph.
#[derive(Clone, Debug, Default)]
pub struct OpDist {
    /// Tasks grouped by owner, sorted by node id (task lists in issuance
    /// order).
    pub groups: Vec<(NodeId, Vec<TaskRef>)>,
    /// Contiguous iteration-order task runs `[lo, hi)` per owner — the
    /// fixed-size slice descriptors non-DCR distribution scatters.
    pub slices: Vec<(u32, u32, NodeId)>,
}

/// Host-side wall-clock profile of one expansion, split by what the
/// time bought. Pure observability: the numbers vary run to run and are
/// never part of any simulated result, fingerprint, or stage report.
///
/// The split separates *analysis* — safety verdicts, the dependence
/// oracle's scans, and distribution planning, the work trace replay
/// exists to skip — from *materialization*, the construction of task
/// instances and their dependence/copy lists, which every expansion
/// (fresh or replayed) must produce. `replay_ns` is the replay
/// subsystem's own footprint: key hashing, window detection, entry
/// validation, and oracle exit-state bookkeeping. The per-iteration
/// analysis overhead compared across replay on/off in `BENCH_PR6.json`
/// is `analysis_ns + replay_ns`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExpandProfile {
    /// Safety verdicts, oracle dependence scans, distribution planning.
    pub analysis_ns: u64,
    /// Task-instance construction: the fresh point loop or a trace's
    /// splice of captured instances.
    pub materialize_ns: u64,
    /// Trace recorder overhead: detection, entry validation, capture
    /// snapshots, and replayed oracle exit states.
    pub replay_ns: u64,
}

/// The fully expanded program plus its exact task graph.
pub struct ExpandedProgram {
    /// All point tasks, in issuance order (op-major, then point order).
    pub tasks: Vec<TaskInstance>,
    /// Task range `[lo, hi)` of each operation.
    pub op_tasks: Vec<(u32, u32)>,
    /// Safety verdict of each operation.
    pub safety: Vec<OpSafety>,
    /// Predecessors of each task.
    pub deps: Vec<Vec<TaskRef>>,
    /// Successors of each task.
    pub succs: Vec<Vec<TaskRef>>,
    /// Incoming copies of each task.
    pub copies: Vec<Vec<CopyIn>>,
    /// Distribution plan (owner groups + slice runs) of each operation.
    pub dist: Vec<OpDist>,
    /// Analysis-cache hit/miss accounting for this expansion.
    pub analysis_cache: AnalysisCacheStats,
    /// Trace capture/replay accounting for this expansion. Host-side
    /// observability only — like `analysis_cache`, never part of the
    /// simulated result.
    pub trace_replay: TraceReplayStats,
    /// Whether each operation was materialized by replaying a captured
    /// trace instead of running the analyses.
    pub replayed_ops: Vec<bool>,
    /// Capture/replay/invalidate events in op order, for the executor's
    /// `TraceLog` markers.
    pub trace_marks: Vec<TraceMark>,
    /// Host wall-clock spent producing this expansion, by bucket.
    pub profile: ExpandProfile,
}

impl ExpandedProgram {
    /// Number of point tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True iff the program has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tasks of operation `op`.
    pub fn tasks_of(&self, op: usize) -> std::ops::Range<usize> {
        let (lo, hi) = self.op_tasks[op];
        lo as usize..hi as usize
    }
}

/// Per-(subspace, field) access bookkeeping for the oracle.
///
/// Legion privileges are per-field: accesses to disjoint field sets never
/// conflict even on the same points. We track fields as bitmasks (field
/// spaces here are small); a write retires exactly the bits it covers
/// from earlier records.
#[derive(Default, Clone, PartialEq, Eq, Debug)]
pub(crate) struct SpaceState {
    /// Live writers: `(task, producer req, field mask, reduce op if the
    /// write was a reduction)`.
    pub(crate) writes: Vec<(TaskRef, usize, u64, Option<ReductionOpId>)>,
    /// Readers since the covering writes.
    pub(crate) readers: Vec<(TaskRef, u64)>,
    /// Pending reducers (folded into the next reader/writer). A write
    /// whose subspace *fully covers* this buffer retires these records
    /// (e.g. circuit's `update_voltages` consuming the ghost charge
    /// buffers): any later accessor overlapping this buffer necessarily
    /// overlaps the covering writer too, so the ordering survives
    /// transitively through it. A partially covering write must leave
    /// the records in place — accessors of the uncovered part still need
    /// direct edges — which at worst duplicates edges the covering path
    /// already implies.
    pub(crate) reducers: Vec<(ReductionOpId, TaskRef, usize, u64)>,
    /// Open reduction epochs on this buffer: `(op, field bits, epoch id)`.
    /// Tracks which epoch each live field bit belongs to, so every
    /// reducer can be told which epoch to (lazily) initialize. *Any*
    /// overlapping write (full or partial cover) closes the epoch bits
    /// it writes: the next reduce there opens a fresh epoch and the
    /// executor re-initializes the buffer.
    pub(crate) epochs: Vec<(ReductionOpId, u64, u32)>,
    /// Field bits whose pending contributions were folded into (or
    /// invalidated by) a write to overlapping data, tagged with the
    /// consuming op. Gates *data folds only* — later ops do not fold the
    /// consumed contributions again — and never hides a record from the
    /// dependence scan (that was an unsoundness the differential oracle
    /// caught: a reducer joining the epoch *after* the consuming write,
    /// within the same op, was invisible to later ops). Cleared per bit
    /// when a fresh epoch re-initializes the buffer. Tasks of the
    /// consuming op itself still fold (several sibling writers may each
    /// consume part of the buffer, as in circuit's `update_voltages`).
    pub(crate) consumed: Vec<(u32, u64)>,
}

impl SpaceState {
    /// Bits consumed by ops strictly before `op`.
    fn consumed_before(&self, op: u32) -> u64 {
        self.consumed
            .iter()
            .filter(|(o, _)| *o < op)
            .fold(0u64, |acc, (_, m)| acc | m)
    }
}

/// Resolve a requirement's field list to an explicit bitmask.
fn field_mask(program: &Program, field_space: il_region::FieldSpaceId, fields: &[il_region::FieldId]) -> u64 {
    let len = program.forest.field_space(field_space).len();
    assert!(len <= 64, "field spaces are limited to 64 fields");
    if fields.is_empty() {
        if len == 64 { u64::MAX } else { (1u64 << len) - 1 }
    } else {
        fields.iter().fold(0u64, |m, f| {
            assert!((f.0 as usize) < len, "field {f:?} outside field space");
            m | (1u64 << f.0)
        })
    }
}

/// The field ids named by a mask.
fn mask_fields(mask: u64) -> Vec<il_region::FieldId> {
    (0..64)
        .filter(|b| mask & (1u64 << b) != 0)
        .map(|b| il_region::FieldId(b as u32))
        .collect()
}

/// The mutable state of the dependence oracle: per-space access records,
/// the BVH overlap index per tree, and the reduction-epoch counter. The
/// oracle's transition per task is a deterministic function of the states
/// it touches and is *equivariant* under uniform shifts of task refs, op
/// indices, and epoch ids — only equality and ordering comparisons are
/// applied to those — which is what makes whole-sequence trace replay
/// ([`crate::replay`]) sound: equal (shift-normalized) entry states imply
/// equal (shifted) outputs.
pub(crate) struct Oracle {
    /// Access records per `(tree, subspace)`.
    pub(crate) states: HashMap<(RegionTreeId, IndexSpaceId), SpaceState>,
    /// Candidate overlaps among touched spaces, per tree, found through a
    /// bounding-volume hierarchy — the §5 structure Legion uses for its
    /// logarithmic-time physical analysis.
    touched: HashMap<RegionTreeId, il_region::BvhSet<IndexSpaceId>>,
    /// The subset of `touched` holding only spaces with writer usage
    /// (write, read-write, or reduce). Read-only registrations query
    /// this tree instead of `touched`: read–read overlaps never produce
    /// dependences, so materializing them is pure waste — and on apps
    /// where every piece reads a shared hub region (power-law pagerank)
    /// it is *quadratic* waste that breaks §5's O(|D| log |P|) bound.
    writer_bvh: HashMap<RegionTreeId, il_region::BvhSet<IndexSpaceId>>,
    /// Spaces ever used with writer privilege.
    writers: HashSet<(RegionTreeId, IndexSpaceId)>,
    /// Overlap sets, append-only once registered. Privilege-aware: a
    /// writer space's list holds *every* overlapping registered space
    /// (its scan needs readers for WAR edges); a read-only space's list
    /// holds only overlapping *writer* spaces (the only ones that can
    /// produce its RAW edges). A read-only space promoted to writer is
    /// upgraded in place — see [`Oracle::upgrade`].
    pub(crate) overlaps: HashMap<(RegionTreeId, IndexSpaceId), Vec<IndexSpaceId>>,
    /// Monotone id source for reduction epochs (globally unique so the
    /// executor's once-per-epoch fill markers never collide across
    /// buffers or fields).
    pub(crate) next_epoch: u32,
    /// When `Some`, every state consultation appends a [`ProvEntry`]
    /// describing which member space produced which run of dependence
    /// edges and copies, and every consumption-record clear appends to
    /// `clears`. Enabled only while the trace recorder captures a
    /// window — provenance lets it encode each captured edge per the
    /// validity argument of the member that produced it. Pure
    /// observation: recording never changes the scan's output.
    pub(crate) prov: Option<ProvLog>,
}

/// Provenance recorded over one capture window (see [`Oracle::prov`]).
#[derive(Default)]
pub(crate) struct ProvLog {
    /// One entry per state consultation, in scan order.
    pub(crate) consults: Vec<ProvEntry>,
    /// Field bits cleared from a space's consumption record during the
    /// window (a fresh reduction epoch moots stale consumed marks, a
    /// write retires its own space's record). Clears apply to every
    /// record present at that moment, so replay can reapply the union
    /// to whatever has accumulated since capture.
    pub(crate) clears: Vec<((RegionTreeId, IndexSpaceId), u64)>,
}

/// One state consultation during a provenance-recorded scan: task `t`'s
/// requirement with privilege `privilege` and field `mask` consulted
/// member `key` and contributed the dependence edges `deps` (pre-dedup
/// values — the final per-task list is sorted and deduplicated, so
/// counts could not be sliced back) and the next `copies` incoming
/// copies of `t`'s copy list (in push order). `consumed` is the
/// already-consumed field union the consult saw; `fold_src` is the
/// reducer a fold copy was taken from, if any — replay validity hinges
/// on whether that source predates the window.
pub(crate) struct ProvEntry {
    pub(crate) task: TaskRef,
    pub(crate) key: (RegionTreeId, IndexSpaceId),
    pub(crate) mask: u64,
    pub(crate) privilege: Privilege,
    pub(crate) deps: Vec<TaskRef>,
    pub(crate) copies: u32,
    pub(crate) consumed: u64,
    pub(crate) fold_src: Option<TaskRef>,
}

/// Deduplicate BVH query hits in place, keeping first-encounter order
/// (multi-box queries can return the same space once per box).
/// Box decomposition itself is [`il_region::coverage_boxes`] — shared
/// with the forest's partition-disjointness check.
fn dedup_in_order(v: &mut Vec<IndexSpaceId>) {
    let mut seen = HashSet::with_capacity(v.len());
    v.retain(|&s| seen.insert(s));
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            states: HashMap::new(),
            touched: HashMap::new(),
            writer_bvh: HashMap::new(),
            writers: HashSet::new(),
            overlaps: HashMap::new(),
            next_epoch: 0,
            prov: None,
        }
    }

    /// Register `space` in `tree`'s BVH and compute its overlap set: BVH
    /// query for bounding-box candidates (O(log n + k)), then the exact
    /// region-forest disjointness test on each candidate. This mirrors
    /// §5's "distributed bounding volume hierarchy" used by Legion's
    /// physical analysis. Overlap lists are append-only: registering a
    /// new space pushes it onto the lists of everything it (relevantly)
    /// overlaps, and nothing is ever removed — so list *length* equality
    /// implies list equality, which the trace-replay validity check
    /// relies on.
    ///
    /// `writes` is whether the requirement registering this space
    /// carries writer privilege. Read-only registrations query only the
    /// writer BVH and join only writer lists: read–read pairs produce no
    /// dependences, so omitting them loses nothing (the replay member
    /// walk inherits the same guarantee — a read-only direct space's
    /// consults only ever touch writer spaces). A sparse domain queries
    /// per contiguous run rather than by its whole bounding box, so a
    /// ghost set of "a far hub window plus a near neighbor" does not
    /// collide with every piece in between.
    pub(crate) fn register(
        &mut self,
        forest: &RegionForest,
        tree: RegionTreeId,
        space: IndexSpaceId,
        writes: bool,
    ) {
        if self.overlaps.contains_key(&(tree, space)) {
            if writes && !self.writers.contains(&(tree, space)) {
                self.upgrade(forest, tree, space);
            }
            return;
        }
        let mut mine = vec![space];
        let domain = forest.domain(space);
        if !domain.is_empty() {
            let boxes = il_region::coverage_boxes(&domain);
            let searched =
                if writes { self.touched.entry(tree).or_default() } else { self.writer_bvh.entry(tree).or_default() };
            let mut candidates = Vec::new();
            for b in &boxes {
                searched.query(b, &mut candidates);
            }
            dedup_in_order(&mut candidates);
            for other in candidates {
                if !forest.spaces_disjoint(space, other) {
                    mine.push(other);
                    self.overlaps.get_mut(&(tree, other)).expect("present").push(space);
                }
            }
            let all = self.touched.entry(tree).or_default();
            for b in &boxes {
                all.insert(*b, space);
            }
            if writes {
                let wb = self.writer_bvh.entry(tree).or_default();
                for b in &boxes {
                    wb.insert(*b, space);
                }
            }
        }
        if writes {
            self.writers.insert((tree, space));
        }
        self.overlaps.insert((tree, space), mine);
    }

    /// Promote a read-only-registered space to writer: join the writer
    /// BVH and connect it to the overlapping read-only spaces its first
    /// registration skipped. All touched lists only ever grow, so the
    /// append-only replay invariant survives (and any live trace whose
    /// direct spaces gain entries is invalidated by the length check —
    /// exactly right, since a new writer can add edges).
    fn upgrade(&mut self, forest: &RegionForest, tree: RegionTreeId, space: IndexSpaceId) {
        self.writers.insert((tree, space));
        let domain = forest.domain(space);
        if domain.is_empty() {
            return;
        }
        let boxes = il_region::coverage_boxes(&domain);
        let mut candidates = Vec::new();
        if let Some(bvh) = self.touched.get(&tree) {
            for b in &boxes {
                bvh.query(b, &mut candidates);
            }
        }
        dedup_in_order(&mut candidates);
        let known: HashSet<IndexSpaceId> =
            self.overlaps[&(tree, space)].iter().copied().collect();
        for other in candidates {
            // `known` holds every writer this space already overlaps (and
            // itself); the rest are read-only spaces that queried only the
            // writer BVH when they registered, so neither side lists the
            // other yet.
            if known.contains(&other) || forest.spaces_disjoint(space, other) {
                continue;
            }
            self.overlaps.get_mut(&(tree, space)).expect("registered").push(other);
            self.overlaps.get_mut(&(tree, other)).expect("present").push(space);
        }
        let wb = self.writer_bvh.entry(tree).or_default();
        for b in &boxes {
            wb.insert(*b, space);
        }
    }

    /// Run the dependence scan for task `t`: discover its predecessor
    /// edges and incoming copies, then fold its own accesses into the
    /// per-space states. `tasks` is the full task list (mutated only at
    /// `tasks[t].reduce_fill`); `deps_t`/`copies_t` are task `t`'s edge
    /// and copy lists.
    fn process_task(
        &mut self,
        program: &Program,
        tasks: &mut [TaskInstance],
        deps_t: &mut Vec<TaskRef>,
        copies_t: &mut Vec<CopyIn>,
        t: usize,
    ) {
        let forest = &program.forest;
        let tref = t as TaskRef;
        let op_idx = tasks[t].op as usize;
        let launch = program.ops[op_idx].launch();
        for (req_idx, req) in launch.reqs.iter().enumerate() {
            let space = tasks[t].subspaces[req_idx];
            let tree = req.tree;
            let mask = field_mask(program, req.field_space, &req.fields);
            self.register(forest, tree, space, !matches!(req.privilege, Privilege::Read));
            let fsd = forest.field_space(req.field_space);

            let over = self.overlaps.get(&(tree, space)).expect("registered").clone();
            // This subspace's own write records, by producer: a copy from
            // an *older* writer in an overlapping aliased space must not
            // carry fields a newer in-place write already produced here —
            // at apply time the in-place data is "already there" and a
            // stale copy would clobber it (the AMR pattern: `unew` written
            // through the fine blocks after an earlier write through the
            // coarse blocks). The dependence edges stay; only the data
            // movement is suppressed.
            let own_writes: Vec<(TaskRef, u64)> = self
                .states
                .get(&(tree, space))
                .map(|s| s.writes.iter().map(|w| (w.0, w.2)).collect())
                .unwrap_or_default();
            for o_space in over {
                let Some(state) = self.states.get(&(tree, o_space)) else {
                    continue;
                };
                // Contributions already folded into an earlier op's
                // write: keep the dependence edges, skip the data fold.
                let consumed = state.consumed_before(tasks[t].op);
                // Bytes of an incoming copy from `producer` for its
                // mask. Staleness only ever suppresses plain overwrite
                // copies: a reduction fold accumulates into the
                // destination instead of clobbering it, and fold
                // staleness is already governed by the consumption
                // records (`consumed_before`).
                let copy_bytes = |pmask: u64, producer: TaskRef, is_fold: bool| -> (Vec<il_region::FieldId>, u64) {
                    let stale = if is_fold || o_space == space {
                        0
                    } else {
                        own_writes
                            .iter()
                            .filter(|&&(w, _)| w > producer)
                            .fold(0u64, |m, &(_, wm)| m | wm)
                    };
                    let shared = mask_fields(pmask & mask & !stale);
                    let per_point: u64 = shared.iter().map(|f| fsd.kind(*f).size()).sum();
                    let vol = overlap_volume(forest.domain(space), forest.domain(o_space));
                    (shared, vol * per_point)
                };
                let copies_before = copies_t.len();
                let mut new_deps: Vec<TaskRef> = Vec::new();
                let mut fold_src: Option<TaskRef> = None;
                match req.privilege {
                    Privilege::Read => {
                        for &(w, _wreq, wmask, reduce) in &state.writes {
                            if w != tref && wmask & mask != 0 {
                                new_deps.push(w);
                                let (fields, bytes) = copy_bytes(wmask, w, reduce.is_some());
                                if bytes > 0 {
                                    copies_t.push(CopyIn {
                                        from: w,
                                        src_space: o_space,
                                        dst_req: req_idx,
                                        tree,
                                        fields,
                                        bytes,
                                        fold: reduce,
                                    });
                                }
                            }
                        }
                        // One fold per source buffer: the buffer already
                        // accumulates every contribution of the epoch, so
                        // depend on all reducers but copy once.
                        for &(red_op, r, _rreq, rmask) in &state.reducers {
                            if r != tref && rmask & mask != 0 {
                                new_deps.push(r);
                                let (fields, bytes) = copy_bytes(rmask & !consumed, r, true);
                                if bytes > 0 && fold_src.is_none() {
                                    fold_src = Some(r);
                                    copies_t.push(CopyIn {
                                        from: r,
                                        src_space: o_space,
                                        dst_req: req_idx,
                                        tree,
                                        fields,
                                        bytes,
                                        fold: Some(red_op),
                                    });
                                }
                            }
                        }
                    }
                    Privilege::Write | Privilege::ReadWrite => {
                        let wants_data = req.privilege == Privilege::ReadWrite;
                        for &(w, _wreq, wmask, reduce) in &state.writes {
                            if w != tref && wmask & mask != 0 {
                                new_deps.push(w);
                                if wants_data {
                                    let (fields, bytes) = copy_bytes(wmask, w, reduce.is_some());
                                    if bytes > 0 {
                                        copies_t.push(CopyIn {
                                            from: w,
                                            src_space: o_space,
                                            dst_req: req_idx,
                                            tree,
                                            fields,
                                            bytes,
                                            fold: reduce,
                                        });
                                    }
                                }
                            }
                        }
                        for &(r, rmask) in &state.readers {
                            if r != tref && rmask & mask != 0 {
                                new_deps.push(r);
                            }
                        }
                        for &(red_op, r, _rreq, rmask) in &state.reducers {
                            if r != tref && rmask & mask != 0 {
                                new_deps.push(r);
                                if wants_data {
                                    let (fields, bytes) = copy_bytes(rmask & !consumed, r, true);
                                    if bytes > 0 && fold_src.is_none() {
                                        fold_src = Some(r);
                                        copies_t.push(CopyIn {
                                            from: r,
                                            src_space: o_space,
                                            dst_req: req_idx,
                                            tree,
                                            fields,
                                            bytes,
                                            fold: Some(red_op),
                                        });
                                    }
                                }
                            }
                        }
                    }
                    Privilege::Reduce(op) => {
                        for &(w, _wreq, wmask, _) in &state.writes {
                            if w != tref && wmask & mask != 0 {
                                new_deps.push(w);
                            }
                        }
                        for &(r, rmask) in &state.readers {
                            if r != tref && rmask & mask != 0 {
                                new_deps.push(r);
                            }
                        }
                        for &(other_op, r, _rreq, rmask) in &state.reducers {
                            if other_op != op && r != tref && rmask & mask != 0 {
                                new_deps.push(r);
                            }
                        }
                        // Same-op reducers stay mutually unordered, as
                        // commutativity allows — including on the same
                        // buffer. The executor's lazy once-per-epoch
                        // identity fill (keyed by the epoch ids recorded
                        // below) makes the buffer initialization safe
                        // without an ordering edge.
                    }
                }
                if let Some(prov) = &mut self.prov {
                    prov.consults.push(ProvEntry {
                        task: tref,
                        key: (tree, o_space),
                        mask,
                        privilege: req.privilege,
                        deps: new_deps.clone(),
                        copies: (copies_t.len() - copies_before) as u32,
                        consumed,
                        fold_src,
                    });
                }
                deps_t.extend(new_deps);
            }

            // A write consumes pending reduction contributions on every
            // overlapping buffer: they have been folded into (or
            // invalidated by) the new data, so the epoch closes (the
            // next reduce re-initializes the buffer) and later ops do
            // not fold them again. The *records* are removed only when
            // this write fully covers the buffer — then any later
            // accessor necessarily overlaps the writer and the ordering
            // survives transitively through it. A partial cover must
            // keep them: accessors of the uncovered part still need
            // direct edges (several sibling writers may jointly cover a
            // buffer, as circuit's `update_voltages` tasks do on a ghost
            // region spanning two neighbor pieces).
            if matches!(req.privilege, Privilege::Write | Privilege::ReadWrite) {
                let op_idx = tasks[t].op;
                let over = self.overlaps.get(&(tree, space)).expect("registered").clone();
                for o_space in over {
                    if o_space == space {
                        continue; // own state retired below
                    }
                    let o_dom = forest.domain(o_space);
                    let full = overlap_volume(forest.domain(space), o_dom) == o_dom.volume();
                    let Some(st) = self.states.get_mut(&(tree, o_space)) else {
                        continue;
                    };
                    for e in &mut st.epochs {
                        e.1 &= !mask;
                    }
                    st.epochs.retain(|e| e.1 != 0);
                    if full {
                        for r in &mut st.reducers {
                            r.3 &= !mask;
                        }
                        st.reducers.retain(|r| r.3 != 0);
                    }
                    if st.reducers.iter().any(|r| r.3 & mask != 0) {
                        match st.consumed.iter_mut().find(|(o, _)| *o == op_idx) {
                            Some((_, m)) => *m |= mask,
                            None => st.consumed.push((op_idx, mask)),
                        }
                    }
                }
            }

            // Update this space's own state.
            let state = self.states.entry((tree, space)).or_default();
            match req.privilege {
                Privilege::Read => state.readers.push((tref, mask)),
                Privilege::Write | Privilege::ReadWrite => {
                    // Retire the covered field bits from earlier records.
                    for w in &mut state.writes {
                        w.2 &= !mask;
                    }
                    state.writes.retain(|w| w.2 != 0);
                    for r in &mut state.readers {
                        r.1 &= !mask;
                    }
                    state.readers.retain(|r| r.1 != 0);
                    for r in &mut state.reducers {
                        r.3 &= !mask;
                    }
                    state.reducers.retain(|r| r.3 != 0);
                    for e in &mut state.epochs {
                        e.1 &= !mask;
                    }
                    state.epochs.retain(|e| e.1 != 0);
                    for (_, m) in &mut state.consumed {
                        *m &= !mask;
                    }
                    state.consumed.retain(|(_, m)| *m != 0);
                    if let Some(prov) = &mut self.prov {
                        prov.clears.push(((tree, space), mask));
                    }
                    state.writes.push((tref, req_idx, mask, None));
                }
                Privilege::Reduce(op) => {
                    // Reducers join the current epoch on this buffer; the
                    // epoch ends when a write consumes the contributions.
                    // Epochs are tracked per field bit: bits with no open
                    // same-op epoch start a fresh one (the buffer is
                    // re-initialized there, and any stale consumed marks
                    // on those bits are moot), bits with one join it.
                    let open: u64 = state
                        .epochs
                        .iter()
                        .filter(|&&(oo, _, _)| oo == op)
                        .fold(0u64, |acc, &(_, bits, _)| acc | bits);
                    let fresh_bits = mask & !open;
                    if fresh_bits != 0 {
                        for (_, m) in &mut state.consumed {
                            *m &= !fresh_bits;
                        }
                        state.consumed.retain(|(_, m)| *m != 0);
                        if let Some(prov) = &mut self.prov {
                            prov.clears.push(((tree, space), fresh_bits));
                        }
                        state.epochs.push((op, fresh_bits, self.next_epoch));
                        self.next_epoch += 1;
                    }
                    // Record the epoch of every field this requirement
                    // folds into; the executor identity-fills each
                    // (buffer, field, epoch) at its first-executing
                    // member.
                    let mut fill = Vec::new();
                    for b in 0..64u32 {
                        let bit = 1u64 << b;
                        if mask & bit == 0 {
                            continue;
                        }
                        let eid = state
                            .epochs
                            .iter()
                            .find(|e| e.0 == op && e.1 & bit != 0)
                            .map(|e| e.2)
                            .expect("every masked bit was assigned an epoch above");
                        fill.push((FieldId(b), eid));
                    }
                    tasks[t].reduce_fill[req_idx] = fill;
                    state.reducers.push((op, tref, req_idx, mask));
                }
            }
        }
        deps_t.sort_unstable();
        deps_t.dedup();
    }
}

/// In-progress expansion: the accumulating [`ExpandedProgram`] arrays,
/// the verdict cache, and the dependence [`Oracle`]. The main loop (and
/// the trace recorder) appends one op at a time, either by running
/// [`Expander::expand_op`] + [`Expander::scan_op`] or by splicing in a
/// captured trace.
pub(crate) struct Expander<'p> {
    pub(crate) program: &'p Program,
    config: &'p RuntimeConfig,
    default_shard: ShardingFn,
    verdict_cache: HashMap<u64, OpSafety>,
    /// Signatures whose verdicts were pre-seeded from a tenant's warm
    /// state (empty on the legacy path); hits on these count as
    /// `warm_hits`.
    warm_sigs: HashSet<u64>,
    cache_stats: AnalysisCacheStats,
    pub(crate) oracle: Oracle,
    pub(crate) tasks: Vec<TaskInstance>,
    pub(crate) op_tasks: Vec<(u32, u32)>,
    pub(crate) safety: Vec<OpSafety>,
    pub(crate) deps: Vec<Vec<TaskRef>>,
    pub(crate) copies: Vec<Vec<CopyIn>>,
    pub(crate) dist: Vec<OpDist>,
    pub(crate) replayed_ops: Vec<bool>,
    pub(crate) prof: ExpandProfile,
}

impl<'p> Expander<'p> {
    fn new(program: &'p Program, config: &'p RuntimeConfig) -> Self {
        Expander {
            program,
            config,
            default_shard: block_shard(),
            verdict_cache: HashMap::new(),
            warm_sigs: HashSet::new(),
            cache_stats: AnalysisCacheStats {
                enabled: config.analysis_cache,
                ..AnalysisCacheStats::default()
            },
            oracle: Oracle::new(),
            tasks: Vec::new(),
            op_tasks: Vec::with_capacity(program.ops.len()),
            safety: Vec::with_capacity(program.ops.len()),
            deps: Vec::new(),
            copies: Vec::new(),
            dist: Vec::with_capacity(program.ops.len()),
            replayed_ops: Vec::with_capacity(program.ops.len()),
            prof: ExpandProfile::default(),
        }
    }

    /// Number of ops materialized so far (the index the next op gets).
    pub(crate) fn next_op(&self) -> usize {
        self.op_tasks.len()
    }

    /// Materialize op `op_idx`: safety verdict (through the signature
    /// cache), point tasks with sharding decisions, and the distribution
    /// plan. Does not touch the oracle.
    pub(crate) fn expand_op(&mut self, op_idx: usize) {
        debug_assert_eq!(op_idx, self.next_op());
        let program = self.program;
        let forest = &program.forest;
        let nodes = self.config.nodes;
        let launch = program.ops[op_idx].launch();
        let analyze = || {
            let args: Vec<LaunchArg> = launch
                .reqs
                .iter()
                .map(|r| LaunchArg {
                    partition: r.partition,
                    functor: resolve(program, r.functor).clone(),
                    privilege: r.privilege,
                    fields: r.fields.clone(),
                })
                .collect();
            match analyze_launch(forest, &launch.domain, &args) {
                HybridVerdict::SafeStatic => OpSafety::Static,
                HybridVerdict::NeedsDynamic(plan) => match plan.run() {
                    Ok(evals) => OpSafety::Dynamic { evals },
                    Err(_) => OpSafety::Sequential,
                },
                HybridVerdict::Unsafe(_) => OpSafety::Sequential,
            }
        };
        // Verdicts memoized per launch signature (same task + requirement
        // shapes + domain ⇒ same verdict), as the compiler caches per
        // source loop. PR 2 made the signature collision-free precisely so
        // it could carry this weight; `tests/analysis_cache.rs` pins that
        // cached and uncached expansions are indistinguishable.
        let s_analysis = std::time::Instant::now();
        let verdict = if self.config.analysis_cache {
            use std::collections::hash_map::Entry;
            let sig = launch_signature(launch, program);
            match self.verdict_cache.entry(sig) {
                Entry::Occupied(hit) => {
                    self.cache_stats.hits += 1;
                    if self.warm_sigs.contains(&sig) {
                        self.cache_stats.warm_hits += 1;
                    }
                    if let OpSafety::Dynamic { evals } = hit.get() {
                        self.cache_stats.evals_saved += *evals;
                    }
                    hit.get().clone()
                }
                Entry::Vacant(miss) => {
                    self.cache_stats.misses += 1;
                    miss.insert(analyze()).clone()
                }
            }
        } else {
            self.cache_stats.misses += 1;
            analyze()
        };
        self.safety.push(verdict);
        self.prof.analysis_ns += s_analysis.elapsed().as_nanos() as u64;

        let s_mat = std::time::Instant::now();
        let shard = launch.shard.clone().unwrap_or_else(|| self.default_shard.clone());
        let lo = self.tasks.len() as u32;
        let volume = launch.domain.volume();
        // One ShardDomain per op: sparse rank queries inside the functor
        // amortize to O(1) instead of re-scanning the point list per task.
        let shard_domain = ShardDomain::new(&launch.domain);
        for idx in 0..volume {
            let point = point_at(&launch.domain, idx);
            let owner = shard(point, &shard_domain, nodes);
            assert!(owner < nodes, "sharding functor returned node {owner} of {nodes}");
            let subspaces = launch
                .reqs
                .iter()
                .map(|r| {
                    let color = resolve(program, r.functor).eval(point);
                    forest.try_subspace(r.partition, color).unwrap_or_else(|| {
                        panic!(
                            "projection functor {:?} selected color {color:?} with no subspace in {:?}",
                            resolve(program, r.functor),
                            r.partition
                        )
                    })
                })
                .collect();
            let nreqs = launch.reqs.len();
            self.tasks.push(TaskInstance {
                op: op_idx as u32,
                point_idx: idx as u32,
                point,
                owner,
                subspaces,
                reduce_fill: vec![Vec::new(); nreqs],
            });
            self.deps.push(Vec::new());
            self.copies.push(Vec::new());
        }
        let hi = self.tasks.len() as u32;
        self.op_tasks.push((lo, hi));
        self.prof.materialize_ns += s_mat.elapsed().as_nanos() as u64;
        let s_dist = std::time::Instant::now();
        self.dist.push(dist_plan(&self.tasks, lo, hi));
        self.prof.analysis_ns += s_dist.elapsed().as_nanos() as u64;
        self.replayed_ops.push(false);
    }

    /// Run the dependence oracle over op `op_idx`'s tasks (which must be
    /// the most recently expanded op).
    pub(crate) fn scan_op(&mut self, op_idx: usize) {
        let s_scan = std::time::Instant::now();
        let (lo, hi) = self.op_tasks[op_idx];
        for t in lo as usize..hi as usize {
            let mut deps_t = std::mem::take(&mut self.deps[t]);
            let mut copies_t = std::mem::take(&mut self.copies[t]);
            self.oracle.process_task(self.program, &mut self.tasks, &mut deps_t, &mut copies_t, t);
            self.deps[t] = deps_t;
            self.copies[t] = copies_t;
        }
        self.prof.analysis_ns += s_scan.elapsed().as_nanos() as u64;
    }
}

/// Group tasks `[lo, hi)` by owner and compute the contiguous slice runs
/// — the sharding/distribution plan the executor (and any captured
/// trace) works from.
fn dist_plan(tasks: &[TaskInstance], lo: u32, hi: u32) -> OpDist {
    let mut groups: HashMap<NodeId, Vec<TaskRef>> = HashMap::new();
    let mut runs: Vec<(u32, u32, NodeId)> = Vec::new();
    for t in lo..hi {
        let owner = tasks[t as usize].owner;
        groups.entry(owner).or_default().push(t);
        match runs.last_mut() {
            Some((_, rhi, rowner)) if *rowner == owner && *rhi == t => *rhi = t + 1,
            _ => runs.push((t, t + 1, owner)),
        }
    }
    let mut groups: Vec<_> = groups.into_iter().collect();
    groups.sort_unstable_by_key(|(n, _)| *n);
    OpDist { groups, slices: runs }
}

/// Expand `program` for `config.nodes` nodes: point tasks, ownership,
/// safety verdicts, dependence edges, copy plans, and distribution plans.
///
/// With [`RuntimeConfig::trace_replay`] on, a rolling window over the
/// per-op trace keys detects repeated launch sequences (every golden
/// app's time loop), captures the first repetition as a
/// [`crate::replay::LaunchTrace`], and replays it on subsequent
/// iterations — skipping the safety analysis, sharding, and dependence
/// scan wholesale. Replay is validated against the oracle's entry state
/// and invalidated on any partition, privilege, domain, functor, or
/// sharding change; the result is bit-for-bit identical with replay off
/// (`tests/trace_replay.rs` locks this over the oracle corpus).
pub fn expand_program(program: &Program, config: &RuntimeConfig) -> ExpandedProgram {
    expand_program_warm(program, config, None)
}

/// [`expand_program`] seeded with (and updating) a tenant's [`WarmState`]:
/// the verdict cache starts from the tenant's carried-over verdicts and
/// the trace recorder from its surviving launch traces, so a repeat
/// session of the same program skips analysis from its very first
/// iteration instead of re-warming. On return the warm state holds the
/// post-expansion cache and traces for the tenant's next session.
///
/// Host-side only: the expansion's *output* — verdicts, task graph,
/// distribution plans, and everything the simulator charges — is
/// byte-identical with or without warm state (warm verdicts were computed
/// from the same collision-free signatures; warm traces validate against
/// the current oracle state exactly like intra-run traces do). Only the
/// `warm_hits`/replay accounting and host wall-clock differ.
pub fn expand_program_warm(
    program: &Program,
    config: &RuntimeConfig,
    warm: Option<&mut WarmState>,
) -> ExpandedProgram {
    let keys = crate::replay::trace_keys(program);
    let mut xp = Expander::new(program, config);
    let mut recorder = Recorder::new(config.trace_replay);
    let mut warm = warm;
    if let Some(w) = warm.as_deref_mut() {
        if config.analysis_cache {
            xp.warm_sigs = w.verdicts.keys().copied().collect();
            xp.verdict_cache = std::mem::take(&mut w.verdicts);
        }
        if config.trace_replay {
            recorder.seed_traces(std::mem::take(&mut w.traces));
        }
    }
    let n = program.ops.len();
    let mut i = 0usize;
    while i < n {
        if config.trace_replay {
            // Recorder work charges its task splices to the materialize
            // bucket itself; the residual — detection, validation,
            // capture snapshots, exit bookkeeping — is the subsystem's
            // own overhead.
            let s = std::time::Instant::now();
            let inner = xp.prof;
            let r = recorder.try_replay(&mut xp, i, &keys);
            if let Some(p) = r {
                charge_residual(&mut xp.prof, inner, s.elapsed());
                i += p;
                continue;
            }
            if let Some(p) = recorder.detect(i, &keys) {
                recorder.capture(&mut xp, i, p, &keys);
                charge_residual(&mut xp.prof, inner, s.elapsed());
                i += p;
                continue;
            }
            charge_residual(&mut xp.prof, inner, s.elapsed());
        }
        xp.expand_op(i);
        xp.scan_op(i);
        i += 1;
    }

    let Expander {
        tasks,
        op_tasks,
        safety,
        deps,
        copies,
        dist,
        replayed_ops,
        cache_stats,
        prof,
        verdict_cache,
        ..
    } = xp;
    let (trace_replay, trace_marks, surviving) = recorder.finish();
    if let Some(w) = warm {
        if config.analysis_cache {
            w.verdicts = verdict_cache;
        }
        if config.trace_replay {
            w.traces = surviving;
        }
    }

    // Cross-validation: a launch the hybrid analysis declared safe must
    // have produced no intra-launch edges.
    for (op_idx, (lo, hi)) in op_tasks.iter().enumerate() {
        if matches!(safety[op_idx], OpSafety::Sequential) {
            continue;
        }
        for t in *lo..*hi {
            for &d in &deps[t as usize] {
                assert!(
                    !(d >= *lo && d < *hi),
                    "safety analysis declared op {op_idx} safe but tasks {d} and {t} interfere"
                );
            }
        }
    }

    let mut succs: Vec<Vec<TaskRef>> = vec![Vec::new(); tasks.len()];
    for (t, preds) in deps.iter().enumerate() {
        for &p in preds {
            succs[p as usize].push(t as TaskRef);
        }
    }

    ExpandedProgram {
        tasks,
        op_tasks,
        safety,
        deps,
        succs,
        copies,
        dist,
        analysis_cache: cache_stats,
        trace_replay,
        replayed_ops,
        trace_marks,
        profile: prof,
    }
}

/// Charge `elapsed` minus whatever the inner call already booked (to any
/// bucket) to the recorder-overhead bucket. Keeps the three buckets
/// disjoint even though recorder calls nest expansion and splice work.
fn charge_residual(prof: &mut ExpandProfile, before: ExpandProfile, elapsed: std::time::Duration) {
    let inner = (prof.analysis_ns - before.analysis_ns)
        + (prof.materialize_ns - before.materialize_ns)
        + (prof.replay_ns - before.replay_ns);
    prof.replay_ns += (elapsed.as_nanos() as u64).saturating_sub(inner);
}

fn resolve(program: &Program, f: FunctorId) -> &il_analysis::ProjExpr {
    program.functor(f)
}

/// Hash of a launch's analysis-relevant shape. Covers the full domain
/// (bounds, dimensionality, sparse points — not just volume), and every
/// requirement's partition, functor, privilege (with reduction op), and
/// field list, so distinct launch shapes do not collide. Keys both the
/// executor's tracing replays ([`crate::exec`]) and the expansion-time
/// analysis cache ([`AnalysisCacheStats`]); the whole-sequence trace keys
/// ([`crate::replay`]) extend it with the region tree, field space, and
/// sharding-functor identity.
pub fn launch_signature(launch: &crate::program::IndexLaunchDesc, program: &Program) -> u64 {
    let mut h = DefaultHasher::new();
    launch.task.0.hash(&mut h);
    launch.domain.volume().hash(&mut h);
    launch.domain.dim().hash(&mut h);
    let (lo, hi) = launch.domain.bounds();
    lo.hash(&mut h);
    hi.hash(&mut h);
    // Sparse domains with equal bounds/volume but different points must
    // hash differently (their dynamic verdicts can differ).
    if let Domain::Sparse { points, .. } = &launch.domain {
        points.hash(&mut h);
    }
    for r in &launch.reqs {
        r.partition.hash(&mut h);
        r.functor.0.hash(&mut h);
        std::mem::discriminant(&r.privilege).hash(&mut h);
        if let Privilege::Reduce(op) = r.privilege {
            op.hash(&mut h);
        }
        r.fields.hash(&mut h);
    }
    // In-place partition replacement (AMR refine/coarsen) keeps partition
    // ids stable while changing their colorings; the forest generation
    // distinguishes the shapes so cached verdicts and captured traces are
    // invalidated rather than replayed against stale bounds.
    program.forest.generation().hash(&mut h);
    h.finish()
}
