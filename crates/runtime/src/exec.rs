//! The distributed executor: the §5 pipeline on the simulated machine.
//!
//! Responsibilities per stage:
//!
//! * **Issuance + logical analysis** — a per-run timeline (the
//!   application / top-level-task thread). Under DCR it is replicated
//!   identically on every node with no communication, so one computation
//!   serves all nodes; without DCR it belongs to node 0. Index launches
//!   cost O(1) per launch here; with IDX disabled each launch pays O(|D|).
//!   Tracing replaces per-task analysis with cheap replay after the first
//!   occurrence of a launch signature — and, without DCR, forces index
//!   launches to expand *before* distribution (§6.2.1).
//! * **Distribution** — DCR: sharding functor selects the O(|D|_local)
//!   local points on each node, no communication. Non-DCR: fixed-size
//!   slice descriptors scatter down a binomial tree (IDX), or one message
//!   per task streams out of node 0 (No IDX / tracing-forced expansion),
//!   serializing on node 0's NIC.
//! * **Physical analysis** — charged O(log |P|) per local task on the
//!   owning node's runtime thread; the dependence *edges* come from the
//!   exact oracle in [`crate::depgraph`].
//! * **Execution + data movement** — tasks run on the owner's GPU;
//!   completions send credit messages to consumer nodes; cross-node
//!   copies pay α–β network costs, and in validation mode move real
//!   bytes between physical instances.

use crate::config::{ExecutionMode, FaultConfig, RuntimeConfig};
use crate::context::{InstanceStore, TaskContext};
use crate::depgraph::{
    expand_program, launch_signature, AnalysisCacheStats, ExpandedProgram, OpSafety, TaskRef,
};
use crate::program::Program;
use crate::replay::TraceReplayStats;
use crate::trace::{run_audits, AuditData, AuditReport, TraceEvent, TraceLog};
use il_machine::{
    FaultCounters, FaultPlan, HierNetwork, MachineDesc, Network, NodeBehavior, NodeCtx, NodeId,
    SimTime, Simulator, Stage, StageTotals, StageTraffic,
};
use il_region::{domain_intersection, FieldId, IndexSpaceId, Privilege, RegionTreeId};
use il_testkit::Json;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Result of one runtime execution.
#[derive(Debug)]
pub struct RunReport {
    /// Latest simulated time any resource is busy.
    pub makespan: SimTime,
    /// Completion time of the last setup (untimed) task.
    pub setup_done: SimTime,
    /// `makespan − setup_done`: the duration of the timed portion, used
    /// for throughput.
    pub elapsed: SimTime,
    /// Point tasks executed.
    pub tasks: u64,
    /// Cross-node messages sent.
    pub messages: u64,
    /// Bytes injected into the network.
    pub bytes: u64,
    /// Total issuance-thread time spent in dynamic safety checks.
    pub dynamic_check_time: SimTime,
    /// Final value of the issuance/logical-analysis frontier.
    pub issuance_span: SimTime,
    /// Aggregate busy time per pipeline stage: per-node runtime threads
    /// and processors, plus the issuance/logical/dynamic-check timeline
    /// counted once (under DCR that timeline is replicated identically
    /// on every node; it is not multiplied here).
    pub stage_busy: StageTotals,
    /// Per-node, simulator-side per-stage busy time (distribution,
    /// physical, exec, network). Sparse: one `(node, totals)` row per
    /// node with nonzero totals, sorted by node id — on a 100k-node
    /// machine where only a few nodes ran work, the report stays small.
    /// The analytically computed issuance timeline is *not* folded in —
    /// each row's runtime-thread stages sum to at most the makespan.
    pub node_stage_busy: Vec<(NodeId, StageTotals)>,
    /// Cross-node messages by sending stage.
    pub stage_messages: [u64; Stage::COUNT],
    /// Bytes injected into the network by sending stage.
    pub stage_bytes: [u64; Stage::COUNT],
    /// The structured per-stage event log (when [`RuntimeConfig::trace`]).
    pub trace: Option<TraceLog>,
    /// Pipeline-audit outcome (when [`RuntimeConfig::audit`]).
    pub audit: Option<AuditReport>,
    /// Final instances (validation mode only).
    pub store: Option<InstanceStore>,
    /// Expansion-time analysis-cache accounting. Host-side observability
    /// only — deliberately *not* part of [`RunReport::stage_json`], so
    /// cache-on and cache-off runs stay byte-identical there.
    pub analysis_cache: AnalysisCacheStats,
    /// Expansion-time trace capture/replay accounting (plus, under fault
    /// injection, invalidations forced by crash re-shards of replayed
    /// ops). Host-side observability only — like `analysis_cache`,
    /// deliberately *not* part of [`RunReport::stage_json`], so replay-on
    /// and replay-off runs stay byte-identical there.
    pub trace_replay: TraceReplayStats,
    /// Fault-injection and recovery accounting (when
    /// [`RuntimeConfig::faults`] is set; `None` on fault-free runs, which
    /// therefore stay byte-identical to a build without the subsystem).
    pub recovery: Option<RecoveryStats>,
}

/// Counters of fault activity and the recovery protocol's responses,
/// deterministic for a given `(seed, RuntimeConfig)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// The fault seed the schedule was generated from.
    pub seed: u64,
    /// Node crashes the plan scheduled.
    pub crashes: u64,
    /// Nodes running with a slow-down multiplier.
    pub slow_nodes: u64,
    /// Data-plane messages the network dropped.
    pub dropped: u64,
    /// Data-plane messages the network duplicated.
    pub duplicated: u64,
    /// Events discarded because their destination node had crashed.
    pub crash_dropped: u64,
    /// Acknowledgement-timeout probes the coordinator ran.
    pub recovery_checks: u64,
    /// Task retry directives issued (a task may be retried repeatedly
    /// across backoff rounds until its completion is journaled).
    pub retried_tasks: u64,
    /// Per-op task groups re-sharded off a confirmed-dead node.
    pub resharded_groups: u64,
    /// Launch-level safety re-analyses run for re-mapped launches.
    pub reanalyses: u64,
    /// Credit messages discarded as duplicate deliveries of an already
    /// paid (producer, consumer) edge.
    pub duplicate_credits: u64,
    /// Credits that arrived after a retry snapshot had already resolved
    /// the corresponding waits (absorbed by saturation, never applied).
    pub late_credits: u64,
}

impl RunReport {
    /// Per-stage summary as a JSON object: for every stage, busy
    /// nanoseconds plus message/byte counts attributed to it.
    pub fn stage_json(&self) -> Json {
        let mut obj = Json::obj();
        for (stage, busy) in self.stage_busy.iter() {
            obj = obj.set(
                stage.name(),
                Json::obj()
                    .set("busy_ns", busy.as_ns())
                    .set("messages", self.stage_messages[stage.index()])
                    .set("bytes", self.stage_bytes[stage.index()]),
            );
        }
        // Fault/recovery counters ride under their own key ("recovery" is
        // already taken by the stage loop above) — and only when fault
        // injection was on, so fault-free stage summaries are unchanged.
        if let Some(r) = &self.recovery {
            obj = obj.set(
                "faults",
                Json::obj()
                    .set("seed", r.seed)
                    .set("crashes", r.crashes)
                    .set("slow_nodes", r.slow_nodes)
                    .set("dropped", r.dropped)
                    .set("duplicated", r.duplicated)
                    .set("crash_dropped", r.crash_dropped)
                    .set("recovery_checks", r.recovery_checks)
                    .set("retried_tasks", r.retried_tasks)
                    .set("resharded_groups", r.resharded_groups)
                    .set("reanalyses", r.reanalyses)
                    .set("duplicate_credits", r.duplicate_credits)
                    .set("late_credits", r.late_credits),
            );
        }
        obj
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// DCR: operation `op` clears logical analysis on this node.
    InjectOp { op: u32 },
    /// Non-DCR: node 0 starts distributing operation `op`.
    DistributeOp { op: u32 },
    /// Non-DCR, IDX: a batch of slice descriptors `slices[lo..hi]` of
    /// operation `op` (scattering down the broadcast tree).
    SliceBatch { op: u32, lo: u32, hi: u32 },
    /// Non-DCR, expanded: a single task launch arriving at its owner.
    TaskArrive { task: TaskRef },
    /// Dependence credits (completions/copies) for consumer tasks, all
    /// from producer `from` (the key the duplicate-delivery dedup uses).
    Credits { from: TaskRef, items: Vec<(TaskRef, u32)> },
    /// A task finished executing on this node's processor.
    TaskDone { task: TaskRef },
    /// Non-DCR: completion/coordination records arriving at the
    /// centralized runtime on node 0 (`count` units to process).
    CentralNotify { count: u32 },
    /// Recovery (faults only): a completion report reaching the node-0
    /// coordinator's journal, over the reliable control channel.
    Complete { task: TaskRef },
    /// Recovery: the coordinator's acknowledgement-timeout probe for `op`
    /// (self-scheduled with exponential backoff until fully journaled).
    RecoveryCheck { op: u32, attempt: u32 },
    /// Recovery: re-issue `items` (task, journal-snapshot remaining
    /// waits) on the receiving node — the original owner, or a survivor
    /// the group was re-sharded onto.
    Retry { op: u32, items: Vec<(TaskRef, u32)> },
}

#[derive(Default, Clone, Copy)]
struct TState {
    injected: bool,
    analysis_done: SimTime,
    waits: u32,
    started: bool,
}

struct Timing {
    setup_done: SimTime,
    last_done: SimTime,
    tasks_done: u64,
}

pub(crate) struct Shared<'p> {
    pub(crate) program: &'p Program,
    pub(crate) expanded: ExpandedProgram,
    pub(crate) config: RuntimeConfig,
    pub(crate) machine: MachineDesc,
    /// First machine node of this session's range `[base, base +
    /// config.nodes)`. Zero on the legacy single-program path; service
    /// mode places each session at its slot's base. All program-level
    /// node ids (task owners, distribution groups) stay session-local;
    /// the executor translates at every machine boundary via
    /// [`Shared::abs`]/[`Shared::local`].
    pub(crate) base: NodeId,
    /// Admission time of this session on the shared machine clock. Zero
    /// on the legacy path. Reported times (makespan, setup, trace-event
    /// starts) are relative to `t0`, which is what makes a session's
    /// report independent of when — and next to whom — it ran.
    pub(crate) t0: SimTime,
    /// Issuance/logical frontier per op, relative to `t0`.
    pub(crate) frontier: Vec<SimTime>,
    /// Per-stage decomposition of the issuance timeline (merged once
    /// into the report's stage totals).
    pub(crate) issuance_stage: StageTotals,
    /// Initial wait counts (deps + copies).
    pub(crate) waits_init: Vec<u32>,
    /// Sum over reqs of ceil(log2 |P_req|), per op (physical-analysis
    /// multiplier).
    pub(crate) phys_weight: Vec<u32>,
    /// Whether each op travels as compact slices without DCR.
    pub(crate) compact_ops: Vec<bool>,
    pub(crate) store: RefCell<InstanceStore>,
    /// Reduction buffers already identity-filled, keyed by
    /// `(tree, subspace, field, epoch id)`: the first epoch member to
    /// execute fills; the rest accumulate (validation mode only).
    reduce_filled: RefCell<HashSet<(RegionTreeId, IndexSpaceId, FieldId, u32)>>,
    timing: RefCell<Timing>,
    dynamic_check_time: SimTime,
    /// Structured event log (when `config.trace`). Pure observability:
    /// recording never changes simulated time.
    trace: Option<RefCell<TraceLog>>,
    /// Pipeline-audit counters (when `config.audit`).
    audit: Option<RefCell<AuditData>>,
    /// Fault-injection runtime state (when `config.faults`). `None` keeps
    /// every recovery code path inert.
    pub(crate) faults: Option<FaultRuntime>,
    /// Trace-replay stats, seeded from the expansion and bumped when a
    /// crash re-shard lands on a replayed op (the trace that produced it
    /// is then stale for any later capture epoch).
    trace_stats: RefCell<TraceReplayStats>,
}

/// Runtime-side state of the recovery protocol.
///
/// The simulated machine can crash nodes, drop and duplicate data-plane
/// messages, and slow nodes down (see [`il_machine::fault`]); this is the
/// runtime's answer. Every completed task reports to a coordinator
/// journal on node 0 over the reliable control channel; per-op
/// acknowledgement timers probe the journal with exponential backoff and
/// re-issue unacknowledged tasks with a journal-snapshot wait count; after
/// `max_retries` probes, a task group whose assigned node is confirmed
/// crashed is re-sharded onto a surviving node (charging a launch-level
/// re-analysis). The cross-node cells model coordinator state cheaply —
/// the simulation is single-threaded and the protocol only reads them on
/// node 0 or for first-completion dedup, both of which a real
/// implementation keeps node-local.
pub(crate) struct FaultRuntime {
    cfg: FaultConfig,
    pub(crate) plan: FaultPlan,
    /// First-completion guard: a task's completion effects (body, timing,
    /// credits, report) run exactly once, however many times crashes and
    /// retries make it execute.
    completed: RefCell<Vec<bool>>,
    /// Node-0 coordinator journal: tasks whose completion report arrived.
    journal: RefCell<Vec<bool>>,
    /// `(op, dead static owner) → survivor` re-sharding decisions.
    reassigned: RefCell<HashMap<(u32, NodeId), NodeId>>,
    stats: RefCell<RecoveryStats>,
}

impl FaultRuntime {
    /// Fresh recovery state over `plan` for an `n_tasks`-task program.
    pub(crate) fn new(cfg: FaultConfig, plan: FaultPlan, n_tasks: usize) -> FaultRuntime {
        FaultRuntime {
            cfg,
            plan,
            completed: RefCell::new(vec![false; n_tasks]),
            journal: RefCell::new(vec![false; n_tasks]),
            reassigned: RefCell::new(HashMap::new()),
            stats: RefCell::new(RecoveryStats::default()),
        }
    }
}

impl<'p> Shared<'p> {
    /// Machine node of session-local node id `local`.
    #[inline]
    pub(crate) fn abs(&self, local: NodeId) -> NodeId {
        self.base + local
    }

    /// Session-local node id of machine node `node`.
    #[inline]
    pub(crate) fn local(&self, node: NodeId) -> NodeId {
        node - self.base
    }

    /// Record a trace event, translating machine node ids and absolute
    /// times into the session frame (identity on the legacy path, where
    /// `base` and `t0` are both zero).
    fn record(&self, mut event: TraceEvent) {
        if event.duration == SimTime::ZERO {
            return;
        }
        if let Some(trace) = &self.trace {
            event.node = self.local(event.node);
            event.start = event.start.saturating_sub(self.t0);
            trace.borrow_mut().record(event);
        }
    }
}

pub(crate) struct RtNode<'p> {
    /// The session this node currently executes, `None` when the node is
    /// idle between service sessions. Rebinding happens only after the
    /// previous session's lane fully drained, so a message can never
    /// reach a node bound to the wrong session; an unbound node receiving
    /// one anyway discards it defensively.
    shared: Option<Rc<Shared<'p>>>,
    states: HashMap<TaskRef, TState>,
    /// Non-DCR, compact ops: local tasks of each op still running (the
    /// slice's completion is reported centrally once, when the last
    /// local task finishes).
    slice_remaining: HashMap<u32, u32>,
    /// Faults only: `(producer, consumer)` credit edges already paid on
    /// this node, so duplicated credit messages are discarded.
    paid: HashSet<(TaskRef, TaskRef)>,
}

impl<'p> RtNode<'p> {
    /// An idle node awaiting its first session.
    pub(crate) fn unbound() -> Self {
        RtNode {
            shared: None,
            states: HashMap::new(),
            slice_remaining: HashMap::new(),
            paid: HashSet::new(),
        }
    }

    /// Bind this node to a session, resetting all per-session state.
    pub(crate) fn bind(&mut self, shared: Rc<Shared<'p>>) {
        self.shared = Some(shared);
        self.states.clear();
        self.slice_remaining.clear();
        self.paid.clear();
    }

    /// Release the session binding (drops this node's `Rc` so the
    /// service can unwrap the shared state into a report).
    pub(crate) fn unbind(&mut self) {
        self.shared = None;
    }

    /// The bound session. Only called from paths `on_message` already
    /// guarded, so the expect is unreachable.
    fn sh(&self) -> Rc<Shared<'p>> {
        self.shared.clone().expect("message dispatched to an unbound node")
    }

    fn state(&mut self, task: TaskRef) -> &mut TState {
        let init = self.sh().waits_init[task as usize];
        self.states.entry(task).or_insert(TState {
            injected: false,
            analysis_done: SimTime::ZERO,
            waits: init,
            started: false,
        })
    }

    /// Charge mapping + physical analysis for a local task and mark it
    /// ready for dependence resolution. Idempotent: a duplicated launch
    /// message or a recovery retry of an already injected task is a no-op.
    fn inject_task(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef) {
        if self.state(task).injected {
            return;
        }
        let shared = self.sh();
        let cost = &shared.config.cost;
        let op = shared.expanded.tasks[task as usize].op;
        let phys = shared.phys_weight[op as usize];
        let prev_stage = ctx.stage();
        ctx.set_stage(Stage::Distribution);
        let dist_start = ctx.now();
        ctx.charge(cost.distribute_point);
        ctx.set_stage(Stage::Physical);
        let phys_start = ctx.now();
        ctx.charge(cost.map_task + cost.physical_per_task * phys as u64);
        let now = ctx.now();
        shared.record(TraceEvent {
            op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Distribution,
            start: dist_start,
            duration: phys_start - dist_start,
        });
        shared.record(TraceEvent {
            op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Physical,
            start: phys_start,
            duration: now - phys_start,
        });
        // Callers (slice scatter, task streaming) keep sending
        // distribution messages after this returns.
        ctx.set_stage(prev_stage);
        let st = self.state(task);
        st.injected = true;
        st.analysis_done = now;
        self.try_start(ctx, task);
    }

    /// Start execution if analysis is done and all credits arrived.
    fn try_start(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef) {
        let st = *self.state(task);
        if !st.injected || st.waits > 0 || st.started {
            return;
        }
        self.state(task).started = true;
        let shared = self.sh();
        let inst = &shared.expanded.tasks[task as usize];
        let op = inst.op as usize;
        let launch = shared.program.ops[op].launch();
        let gpus = shared.machine.gpus_per_node.max(1);
        let local_proc = shared.machine.cpus_per_node + (inst.point_idx as usize % gpus);
        let duration = shared.config.cost.start_task + launch.cost.at(inst.point);
        let exec_start = ctx.now().max(ctx.proc_free(local_proc));
        let done = ctx.exec_on_proc(local_proc, duration);
        shared.record(TraceEvent {
            op: inst.op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Exec,
            start: exec_start,
            duration,
        });
        ctx.send_self_at(done, Msg::TaskDone { task });
    }

    /// Run the body (validation mode) and fan out completion credits.
    fn complete_task(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef) {
        let shared = self.sh();
        // First completion wins, globally: a task can execute both on a
        // node that later crashed and on the survivor it was re-sharded
        // to; its effects (body, timing, credits, report) must not repeat.
        if let Some(fr) = &shared.faults {
            let mut completed = fr.completed.borrow_mut();
            if completed[task as usize] {
                return;
            }
            completed[task as usize] = true;
        }
        if shared.config.mode == ExecutionMode::Validate {
            self.run_body(task);
        }
        // Record timing.
        {
            let inst = &shared.expanded.tasks[task as usize];
            let mut timing = shared.timing.borrow_mut();
            let t = ctx.arrival();
            if (inst.op as usize) < shared.program.timed_from {
                timing.setup_done = timing.setup_done.max(t);
            }
            timing.last_done = timing.last_done.max(t);
            timing.tasks_done += 1;
        }
        // Group credits by consumer owner: 1 credit per dependence edge,
        // plus 1 per incoming copy from this producer.
        let mut per_node: HashMap<NodeId, (Vec<(TaskRef, u32)>, u64)> = HashMap::new();
        for &succ in &shared.expanded.succs[task as usize] {
            let owner = shared.expanded.tasks[succ as usize].owner;
            let copies: Vec<_> = shared.expanded.copies[succ as usize]
                .iter()
                .filter(|c| c.from == task)
                .collect();
            let credits = 1 + copies.len() as u32;
            let bytes: u64 = shared.config.cost.notify_message_bytes
                + copies.iter().map(|c| c.bytes).sum::<u64>();
            let entry = per_node.entry(owner).or_default();
            entry.0.push((succ, credits));
            entry.1 += bytes;
        }
        let mut targets: Vec<_> = per_node.into_iter().collect();
        targets.sort_unstable_by_key(|(n, _)| *n);
        for (node, (items, bytes)) in targets {
            if shared.abs(node) == ctx.node() {
                for (succ, credits) in items {
                    self.pay(ctx, task, succ, credits);
                }
            } else {
                ctx.send(shared.abs(node), Msg::Credits { from: task, items }, bytes);
            }
        }
        // Recovery: report the completion to the session coordinator's
        // journal (its base node) over the reliable control channel.
        if let Some(fr) = &shared.faults {
            let prev = ctx.stage();
            ctx.set_stage(Stage::Recovery);
            if ctx.node() == shared.base {
                fr.journal.borrow_mut()[task as usize] = true;
            } else {
                ctx.send_control(
                    shared.base,
                    Msg::Complete { task },
                    shared.config.cost.notify_message_bytes,
                );
            }
            ctx.set_stage(prev);
        }
        // Centralized mode: completion processing flows through node 0's
        // runtime instance — per task when the op was expanded, per
        // slice when it traveled as a compact index launch.
        if !shared.config.dcr {
            let op = shared.expanded.tasks[task as usize].op;
            let compact = distribution_is_compact(&shared.config, &shared.expanded.safety[op as usize]);
            // Slice-granularity accounting only makes sense on the node
            // the slice statically belongs to; a task recovered onto a
            // different node reports per-task instead (the static owner's
            // count then never reaches zero — it crashed).
            let at_static_owner =
                ctx.node() == shared.abs(shared.expanded.tasks[task as usize].owner);
            let notify = if compact && !at_static_owner {
                true
            } else if compact {
                // A task of a compact op only ever completes on a node
                // that owns a non-empty group of its tasks; a missed
                // lookup or a decrement past zero is executor-state
                // corruption, so both fail loudly (release included)
                // instead of wrapping — covered by the
                // credit-conservation audit.
                let node = shared.local(ctx.node());
                let remaining = self.slice_remaining.entry(op).or_insert_with(|| {
                    let groups = &shared.expanded.dist[op as usize].groups;
                    let i = groups
                        .binary_search_by_key(&node, |(n, _)| *n)
                        .unwrap_or_else(|_| {
                            panic!("op {op} task completed on node {node}, which owns none of its tasks")
                        });
                    groups[i].1.len() as u32
                });
                *remaining = remaining.checked_sub(1).unwrap_or_else(|| {
                    panic!("slice accounting underflow: op {op} over-completed on node {node}")
                });
                *remaining == 0
            } else {
                true
            };
            if notify {
                ctx.send(
                    shared.base,
                    Msg::CentralNotify { count: 1 },
                    shared.config.cost.notify_message_bytes,
                );
            }
        }
    }

    /// Pay `credits` from producer `from` to consumer `task`. Under faults
    /// the `(from, task)` edge is paid at most once — a duplicated credit
    /// message is discarded here.
    fn pay(&mut self, ctx: &mut NodeCtx<'_, Msg>, from: TaskRef, task: TaskRef, credits: u32) {
        let shared = self.sh();
        if let Some(fr) = &shared.faults {
            if !self.paid.insert((from, task)) {
                fr.stats.borrow_mut().duplicate_credits += 1;
                return;
            }
        }
        self.apply_credits(ctx, task, credits);
    }

    fn apply_credits(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef, credits: u32) {
        let shared = self.sh();
        if let Some(audit) = &shared.audit {
            audit.borrow_mut().credits_paid[task as usize] += credits as u64;
        }
        let st = self.state(task);
        let waits = st.waits;
        if let Some(fr) = &shared.faults {
            // A retry snapshot may already have resolved these waits
            // (the producer was journaled before its credit message made
            // it through): saturate instead of panicking, and count it.
            if credits > waits {
                fr.stats.borrow_mut().late_credits += (credits - waits) as u64;
            }
            self.state(task).waits = waits.saturating_sub(credits);
        } else {
            st.waits = waits.checked_sub(credits).unwrap_or_else(|| {
                panic!("credit underflow for task {task}: {credits} credits paid against {waits} waits")
            });
        }
        self.try_start(ctx, task);
    }

    /// Validation mode: apply incoming copies, fill reduction buffers,
    /// run the kernel.
    fn run_body(&mut self, task: TaskRef) {
        let shared = self.sh();
        let forest = &shared.program.forest;
        let inst = &shared.expanded.tasks[task as usize];
        let op = inst.op as usize;
        let launch = shared.program.ops[op].launch();
        let mut store = shared.store.borrow_mut();

        // Ensure destination instances exist.
        for (req, &space) in launch.reqs.iter().zip(&inst.subspaces) {
            store.ensure(forest, req.tree, space, req.field_space);
        }

        // Apply incoming copies: plain copies first, then reduction folds,
        // in deterministic producer order.
        let mut copies = shared.expanded.copies[task as usize].clone();
        copies.sort_by_key(|c| (c.fold.is_some(), c.from, c.src_space, c.dst_req));
        for c in &copies {
            let dst_space = inst.subspaces[c.dst_req];
            if dst_space == c.src_space {
                continue; // same instance: data already in place
            }
            let dst_domain = forest.domain(dst_space).clone();
            let src_domain = forest.domain(c.src_space).clone();
            let Some(overlap) = domain_intersection(&dst_domain, &src_domain) else {
                continue;
            };
            let src = store
                .take((c.tree, c.src_space))
                .unwrap_or_else(|| panic!("copy source instance missing: {:?}", c.src_space));
            {
                let dst = store
                    .get_mut((c.tree, dst_space))
                    .expect("destination ensured above");
                match c.fold {
                    None => dst.copy_from(&src, &overlap, &c.fields),
                    Some(op_id) => {
                        let kind = op_id.kind().expect("built-in reduction");
                        dst.fold_from(&src, &overlap, &c.fields, kind);
                    }
                }
            }
            store.put((c.tree, c.src_space), src);
        }

        // Reduction privileges write contributions into identity-filled
        // buffers (folded into consumers later). Each (buffer, field,
        // epoch) is filled exactly once, by whichever epoch member
        // executes first — members carry the epoch ids the dependence
        // oracle assigned and are otherwise unordered (commutativity).
        for (req_idx, req) in launch.reqs.iter().enumerate() {
            if let Privilege::Reduce(op_id) = req.privilege {
                let kind = op_id.kind().expect("built-in reduction");
                let space = inst.subspaces[req_idx];
                let instance = store.get_mut((req.tree, space)).expect("ensured");
                let mut filled = shared.reduce_filled.borrow_mut();
                for &(f, epoch) in &inst.reduce_fill[req_idx] {
                    if filled.insert((req.tree, space, f, epoch)) {
                        instance.fill_identity(f, kind);
                    }
                }
            }
        }

        if let Some(body) = &shared.program.task(launch.task).body {
            let keys: Vec<_> = launch
                .reqs
                .iter()
                .zip(&inst.subspaces)
                .map(|(req, &space)| ((req.tree, space), forest.domain(space).clone()))
                .collect();
            let mut ctx = TaskContext::assemble(inst.point, launch.scalars.clone(), keys, &mut store);
            body(&mut ctx);
            ctx.disassemble(&mut store);
        }
    }
}

impl<'p> NodeBehavior<Msg> for RtNode<'p> {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Msg>, msg: Msg) {
        if self.shared.is_none() {
            // Unbound between service sessions: slots are only rebound
            // after the previous session's lane drained, so nothing
            // should ever land here — discard defensively if it does.
            return;
        }
        match msg {
            Msg::InjectOp { op } => {
                ctx.set_stage(Stage::Distribution);
                let shared = self.sh();
                let groups = &shared.expanded.dist[op as usize].groups;
                let local = shared.local(ctx.node());
                if let Ok(i) = groups.binary_search_by_key(&local, |(n, _)| *n) {
                    let tasks = groups[i].1.clone();
                    for t in tasks {
                        self.inject_task(ctx, t);
                    }
                }
            }
            Msg::DistributeOp { op } => {
                ctx.set_stage(Stage::Distribution);
                let shared = self.sh();
                let compact = distribution_is_compact(&shared.config, &shared.expanded.safety[op as usize]);
                if compact {
                    let n = shared.expanded.dist[op as usize].slices.len() as u32;
                    self.handle_slice_batch(ctx, op, 0, n);
                } else {
                    // Stream one message per task out of the base node.
                    let (lo, hi) = shared.expanded.op_tasks[op as usize];
                    for t in lo..hi {
                        let owner = shared.abs(shared.expanded.tasks[t as usize].owner);
                        if owner == ctx.node() {
                            self.inject_task(ctx, t);
                        } else {
                            ctx.send(
                                owner,
                                Msg::TaskArrive { task: t },
                                shared.config.cost.task_message_bytes,
                            );
                        }
                    }
                }
            }
            Msg::SliceBatch { op, lo, hi } => {
                ctx.set_stage(Stage::Distribution);
                self.handle_slice_batch(ctx, op, lo, hi);
            }
            Msg::TaskArrive { task } => {
                ctx.set_stage(Stage::Distribution);
                self.inject_task(ctx, task);
            }
            Msg::Credits { from, items } => {
                ctx.set_stage(Stage::Network);
                for (task, credits) in items {
                    self.pay(ctx, from, task, credits);
                }
            }
            Msg::TaskDone { task } => {
                ctx.set_stage(Stage::Network);
                self.complete_task(ctx, task);
            }
            Msg::CentralNotify { count } => {
                ctx.set_stage(Stage::Network);
                let per_unit = self.sh().config.cost.central_complete;
                ctx.charge(per_unit * count as u64);
            }
            Msg::Complete { task } => {
                ctx.set_stage(Stage::Recovery);
                let shared = self.sh();
                if let Some(fr) = &shared.faults {
                    fr.journal.borrow_mut()[task as usize] = true;
                }
            }
            Msg::RecoveryCheck { op, attempt } => {
                self.recovery_check(ctx, op, attempt);
            }
            Msg::Retry { op, items } => {
                self.handle_retry(ctx, op, items);
            }
        }
    }
}

impl<'p> RtNode<'p> {
    /// Node-0 coordinator: probe the completion journal for `op`. Fully
    /// journaled ops let their timer die; otherwise every unacknowledged
    /// task is re-issued to its responsible node with a journal-snapshot
    /// wait count, groups on confirmed-dead nodes are re-sharded onto a
    /// survivor once `attempt` exhausts the retry budget, and the timer
    /// re-arms with exponential backoff.
    fn recovery_check(&mut self, ctx: &mut NodeCtx<'_, Msg>, op: u32, attempt: u32) {
        let shared = self.sh();
        let Some(fr) = &shared.faults else { return };
        ctx.set_stage(Stage::Recovery);
        let check_start = ctx.now();
        ctx.charge(shared.config.cost.recovery_check);
        fr.stats.borrow_mut().recovery_checks += 1;
        let (lo, hi) = shared.expanded.op_tasks[op as usize];
        let mut by_node: HashMap<NodeId, Vec<(TaskRef, u32)>> = HashMap::new();
        {
            let journal = fr.journal.borrow();
            let mut reassigned = fr.reassigned.borrow_mut();
            let now = ctx.now();
            for t in lo..hi {
                if journal[t as usize] {
                    continue;
                }
                let static_owner = shared.expanded.tasks[t as usize].owner;
                let mut dest =
                    reassigned.get(&(op, static_owner)).copied().unwrap_or(static_owner);
                if attempt >= fr.cfg.max_retries && fr.plan.is_crashed(shared.abs(dest), now) {
                    // Retry budget exhausted and the assignee is confirmed
                    // dead (modeled perfect failure detector: the plan's
                    // crash is in the past): re-shard the group onto the
                    // next survivor in rotation (within this session's
                    // node range) and charge the safety re-analysis the
                    // re-mapped launch requires.
                    let survivor =
                        next_survivor(dest, shared.config.nodes, shared.base, &fr.plan);
                    reassigned.insert((op, static_owner), survivor);
                    dest = survivor;
                    let mut stats = fr.stats.borrow_mut();
                    stats.resharded_groups += 1;
                    stats.reanalyses += 1;
                    drop(stats);
                    // A re-shard rewrites a sharding decision a captured
                    // trace may have baked in: if the op was materialized
                    // by replay, count the trace as invalidated (the
                    // paper-side contract for composing tracing with
                    // recovery).
                    if shared.expanded.replayed_ops[op as usize] {
                        shared.trace_stats.borrow_mut().invalidated += 1;
                    }
                    let mut reanalysis = shared.config.cost.logical_launch;
                    if let OpSafety::Dynamic { evals } = &shared.expanded.safety[op as usize] {
                        reanalysis += shared.config.cost.dyn_check_per_eval * *evals;
                    }
                    ctx.charge(reanalysis);
                }
                // Journal-snapshot wait count: edges from producers not
                // yet journaled. Monotone in the journal, so an upper
                // bound on the true remaining waits — and eventually 0.
                let waits = shared.expanded.deps[t as usize]
                    .iter()
                    .filter(|&&p| !journal[p as usize])
                    .count()
                    + shared.expanded.copies[t as usize]
                        .iter()
                        .filter(|c| !journal[c.from as usize])
                        .count();
                by_node.entry(dest).or_default().push((t, waits as u32));
            }
        }
        let fully_journaled = by_node.is_empty();
        let mut targets: Vec<_> = by_node.into_iter().collect();
        targets.sort_unstable_by_key(|(n, _)| *n);
        for (node, items) in targets {
            fr.stats.borrow_mut().retried_tasks += items.len() as u64;
            let bytes = items.len() as u64 * shared.config.cost.task_message_bytes;
            if shared.abs(node) == ctx.node() {
                self.handle_retry(ctx, op, items);
            } else {
                ctx.send_control(shared.abs(node), Msg::Retry { op, items }, bytes);
            }
        }
        shared.record(TraceEvent {
            op,
            task: None,
            node: ctx.node(),
            stage: Stage::Recovery,
            start: check_start,
            duration: ctx.now() - check_start,
        });
        if !fully_journaled {
            let backoff = fr.cfg.ack_timeout * (1u64 << attempt.min(6));
            ctx.send_self_at(ctx.now() + backoff, Msg::RecoveryCheck { op, attempt: attempt + 1 });
        }
    }

    /// Re-issue retried tasks locally: inject if the launch message was
    /// lost, then resolve waits down to the coordinator's journal
    /// snapshot. `min` keeps both bounds honest — the snapshot and the
    /// locally paid credits are each upper bounds on the true remaining
    /// waits, so a task never starts before all its producers completed.
    fn handle_retry(&mut self, ctx: &mut NodeCtx<'_, Msg>, op: u32, items: Vec<(TaskRef, u32)>) {
        let retry_start = ctx.now();
        ctx.set_stage(Stage::Recovery);
        for (task, waits) in items {
            let st = *self.state(task);
            if st.started {
                continue;
            }
            if !st.injected {
                self.inject_task(ctx, task);
            }
            let s = self.state(task);
            if !s.started {
                s.waits = s.waits.min(waits);
                self.try_start(ctx, task);
            }
        }
        self.sh().record(TraceEvent {
            op,
            task: None,
            node: ctx.node(),
            stage: Stage::Recovery,
            start: retry_start,
            duration: ctx.now() - retry_start,
        });
    }

    /// Recursive-halving scatter of slice descriptors (§5, Figure 3): the
    /// sender keeps the first half and forwards the second half to the
    /// owner of its first slice, until single slices expand locally.
    fn handle_slice_batch(&mut self, ctx: &mut NodeCtx<'_, Msg>, op: u32, lo: u32, mut hi: u32) {
        let shared = self.sh();
        let slices = &shared.expanded.dist[op as usize].slices;
        loop {
            if lo >= hi {
                return;
            }
            if hi - lo == 1 {
                let (tlo, thi, owner) = slices[lo as usize];
                let owner = shared.abs(owner);
                if owner == ctx.node() {
                    // The slice has reached its owner and expands into
                    // point tasks: this is the delivery the coverage
                    // audit counts (exactly once per slice).
                    if let Some(audit) = &shared.audit {
                        audit.borrow_mut().slice_delivered[op as usize][lo as usize] += 1;
                    }
                    for t in tlo..thi {
                        self.inject_task(ctx, t);
                    }
                } else {
                    ctx.send(
                        owner,
                        Msg::SliceBatch { op, lo, hi },
                        shared.config.cost.slice_message_bytes,
                    );
                }
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let right_owner = shared.abs(slices[mid as usize].2);
            let bytes = (hi - mid) as u64 * shared.config.cost.slice_message_bytes;
            if right_owner == ctx.node() {
                // Keep both halves local: handle right recursively.
                self.handle_slice_batch(ctx, op, mid, hi);
            } else {
                ctx.send(right_owner, Msg::SliceBatch { op, lo: mid, hi }, bytes);
            }
            hi = mid;
        }
    }
}

/// The session-local node a dead assignee's work moves to: the next node
/// in rotation *within the session's range* that never crashes in the
/// machine's fault plan. The session's base node is crash-exempt by
/// construction (node 0 on the legacy path, exempted slot bases in
/// service mode), so the rotation always terminates — and spreading by
/// rotation (rather than dumping everything on the base) keeps recovered
/// work balanced when several groups die.
fn next_survivor(dead: NodeId, nodes: usize, base: NodeId, plan: &FaultPlan) -> NodeId {
    for step in 1..nodes {
        let candidate = (dead + step) % nodes;
        if !plan.ever_crashes(base + candidate) {
            return candidate;
        }
    }
    0
}

/// Whether this op travels as a compact slice descriptor without DCR.
fn distribution_is_compact(config: &RuntimeConfig, safety: &OpSafety) -> bool {
    config.idx && !matches!(safety, OpSafety::Sequential) && !config.tracing
}

/// Whether this op is carried as a compact index launch through issuance
/// and logical analysis.
fn issuance_is_compact(config: &RuntimeConfig, safety: &OpSafety) -> bool {
    config.idx && !matches!(safety, OpSafety::Sequential)
}

/// The analytically computed issuance/logical-analysis timeline:
/// per-op frontier plus its per-stage decomposition and (when tracing)
/// the corresponding structured events.
struct IssuanceTimeline {
    /// Time each op clears logical analysis.
    frontier: Vec<SimTime>,
    /// Total time spent in dynamic safety checks.
    dyn_total: SimTime,
    /// Per-stage decomposition of the timeline (issuance, logical,
    /// dynamic checks, and the distribution work the tracing-without-DCR
    /// expansion forces onto the issuing node).
    stage: StageTotals,
    /// One event per contiguous stage segment (only when `config.trace`).
    events: Vec<TraceEvent>,
}

impl IssuanceTimeline {
    /// Advance the timeline cursor `t` by `dur` attributed to `stage`,
    /// recording a trace event for the segment when requested.
    fn segment(&mut self, t: &mut SimTime, trace: bool, op: u32, stage: Stage, dur: SimTime) {
        if dur == SimTime::ZERO {
            return;
        }
        self.stage.add(stage, dur);
        if trace {
            self.events.push(TraceEvent {
                op,
                task: None,
                node: 0,
                stage,
                start: *t,
                duration: dur,
            });
        }
        *t += dur;
    }
}

/// Compute the issuance + logical-analysis frontier (identical on every
/// node under DCR; node 0's otherwise), decomposed by stage.
fn compute_frontier(
    program: &Program,
    expanded: &ExpandedProgram,
    config: &RuntimeConfig,
) -> IssuanceTimeline {
    let cost = &config.cost;
    let mut t = SimTime::ZERO;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut tl = IssuanceTimeline {
        frontier: Vec::with_capacity(program.ops.len()),
        dyn_total: SimTime::ZERO,
        stage: StageTotals::new(),
        events: Vec::new(),
    };
    for (i, op) in program.ops.iter().enumerate() {
        let launch = op.launch();
        let d = launch.domain.volume();
        let safety = &expanded.safety[i];
        let opi = i as u32;
        if config.dynamic_checks {
            if let OpSafety::Dynamic { evals } = safety {
                let check = cost.dyn_check_per_eval * *evals;
                tl.dyn_total += check;
                tl.segment(&mut t, config.trace, opi, Stage::DynamicChecks, check);
            }
        }
        let sig = op_signature(program, op);
        let traced = config.tracing && !seen.insert(sig);
        let per_task = if traced {
            cost.trace_replay_per_task
        } else {
            cost.logical_task
        };
        // Per-task charges for a traced repeat are replay work, not fresh
        // logical analysis — attribute them to their own stage.
        let logical_stage = if traced { Stage::TraceReplay } else { Stage::Logical };
        if issuance_is_compact(config, safety) {
            if config.dcr || !config.tracing {
                // Compact through issuance, logical analysis, and (under
                // DCR) distribution: O(1) per launch.
                tl.segment(&mut t, config.trace, opi, Stage::Issuance, cost.issue_launch);
                tl.segment(&mut t, config.trace, opi, Stage::Logical, cost.logical_launch);
            } else {
                // Tracing without DCR: the trace captures/replays
                // individual tasks, forcing expansion before distribution
                // (§6.2.1) — O(|D|) on node 0 despite the index launch.
                tl.segment(
                    &mut t,
                    config.trace,
                    opi,
                    Stage::Issuance,
                    cost.issue_launch + cost.issue_task * d,
                );
                tl.segment(
                    &mut t,
                    config.trace,
                    opi,
                    Stage::Distribution,
                    cost.distribute_point * d,
                );
                tl.segment(&mut t, config.trace, opi, logical_stage, per_task * d);
            }
        } else {
            tl.segment(&mut t, config.trace, opi, Stage::Issuance, cost.issue_task * d);
            tl.segment(&mut t, config.trace, opi, logical_stage, per_task * d);
        }
        tl.frontier.push(t);
    }
    tl
}

/// Signature keying Legion-style trace capture/replay: two launches may
/// replay the same trace only if their full analysis-relevant shape
/// matches. Delegates to [`launch_signature`], which hashes the complete
/// domain (bounds, dimensionality, sparse points — not just volume) and
/// every requirement's privilege, reduction op, and field list, so
/// same-volume launches with different shapes never collide.
fn op_signature(program: &Program, op: &crate::program::Operation) -> u64 {
    launch_signature(op.launch(), program)
}

/// Assemble the per-session shared state: frontier, wait counts,
/// physical-analysis weights, trace pre-seed, audit counters. `base`/`t0`
/// place the session on the machine (`0`/`ZERO` on the legacy path —
/// every derived quantity is then byte-identical to the pre-service
/// executor). `faults` is the session's recovery runtime, built by the
/// caller because the fault *plan* differs between the paths: the legacy
/// path generates a plan over its own machine, the service hands every
/// session the machine-global plan.
pub(crate) fn build_shared<'p>(
    program: &'p Program,
    config: &RuntimeConfig,
    base: NodeId,
    t0: SimTime,
    expanded: ExpandedProgram,
    faults: Option<FaultRuntime>,
) -> Rc<Shared<'p>> {
    let issuance = compute_frontier(program, &expanded, config);

    let waits_init: Vec<u32> = (0..expanded.len())
        .map(|t| (expanded.deps[t].len() + expanded.copies[t].len()) as u32)
        .collect();

    let phys_weight: Vec<u32> = program
        .ops
        .iter()
        .map(|op| {
            op.launch()
                .reqs
                .iter()
                .map(|r| {
                    // ceil(log2 |P|): a 4-way partition costs 2 BVH
                    // levels, not 3 (floor(log2)+1 overcharged every
                    // power-of-two partition by one level).
                    let children = program.forest.partition(r.partition).children.len() as u32;
                    children.max(2).next_power_of_two().trailing_zeros()
                })
                .sum()
        })
        .collect();

    // Which ops travel as compact slice descriptors (the scatter tree
    // the coverage audit watches): only meaningful without DCR.
    let compact_ops: Vec<bool> = expanded
        .safety
        .iter()
        .map(|s| !config.dcr && distribution_is_compact(config, s))
        .collect();

    let machine = MachineDesc::piz_daint(config.nodes);
    let trace = if config.trace {
        let mut log = TraceLog::new();
        for &e in &issuance.events {
            log.record(e);
        }
        // Zero-duration markers for every capture/replay/invalidate
        // event, pinned at the moment the window's first op cleared the
        // issuance timeline. Recorded directly (not through
        // `Shared::record`, which elides zero-duration events): the
        // markers carry no simulated time by design — replay must stay
        // invisible to the clock — but should still be visible in the
        // structured log and Chrome timeline.
        for m in &expanded.trace_marks {
            log.record(TraceEvent {
                op: m.op,
                task: None,
                node: 0,
                stage: Stage::TraceReplay,
                start: issuance.frontier[m.op as usize],
                duration: SimTime::ZERO,
            });
        }
        Some(RefCell::new(log))
    } else {
        None
    };
    let audit = if config.audit {
        let slices_per_op: Vec<usize> = expanded
            .dist
            .iter()
            .zip(&compact_ops)
            .map(|(d, &c)| if c { d.slices.len() } else { 0 })
            .collect();
        Some(RefCell::new(AuditData::sized(expanded.len(), &slices_per_op)))
    } else {
        None
    };
    let trace_stats = RefCell::new(expanded.trace_replay);
    Rc::new(Shared {
        program,
        expanded,
        config: config.clone(),
        machine,
        base,
        t0,
        frontier: issuance.frontier,
        issuance_stage: issuance.stage,
        waits_init,
        phys_weight,
        compact_ops,
        store: RefCell::new(InstanceStore::new()),
        reduce_filled: RefCell::new(HashSet::new()),
        timing: RefCell::new(Timing {
            setup_done: SimTime::ZERO,
            last_done: SimTime::ZERO,
            tasks_done: 0,
        }),
        dynamic_check_time: issuance.dyn_total,
        trace,
        audit,
        faults,
        trace_stats,
    })
}

/// Inject a session's ops (and, under faults, its acknowledgement
/// timers) into the simulator: every op at `t0 + frontier[op]`, targeted
/// at the session's node range. The enqueue order is identical to the
/// pre-service executor, which is what keeps sequence-number assignment —
/// and therefore the whole dispatch schedule — byte-identical at
/// `base = 0`, `t0 = ZERO`.
pub(crate) fn inject_session<'p>(
    sim: &mut Simulator<Msg, RtNode<'p>>,
    shared: &Shared<'p>,
    t0: SimTime,
) {
    for op_idx in 0..shared.program.ops.len() {
        let at = t0 + shared.frontier[op_idx];
        if shared.config.dcr {
            for (node, _) in &shared.expanded.dist[op_idx].groups {
                sim.inject(at, shared.abs(*node), Msg::InjectOp { op: op_idx as u32 });
            }
        } else {
            sim.inject(at, shared.base, Msg::DistributeOp { op: op_idx as u32 });
        }
        // Arm the coordinator's acknowledgement timer for every op: the
        // first probe fires one timeout after the op cleared issuance.
        if let Some(fr) = &shared.faults {
            sim.inject(
                at + fr.cfg.ack_timeout,
                shared.base,
                Msg::RecoveryCheck { op: op_idx as u32, attempt: 0 },
            );
        }
    }
}

/// Runaway-guard budget of one session's protocol (the caller still takes
/// the max with the machine-sized floor).
pub(crate) fn event_budget(total_tasks: u64, ops: usize, nodes: usize, faulted: bool) -> u64 {
    let mut max_events = 64 * total_tasks.max(1_000) + 64 * (ops as u64) * (nodes as u64);
    if faulted {
        // Retries, duplicated deliveries, and backoff probes inflate the
        // event count well past the fault-free bound.
        max_events = max_events.saturating_mul(16);
    }
    max_events
}

/// Simulator-side aggregates of one session, extracted before the shared
/// state is unwrapped: the whole machine's counters on the legacy path,
/// one lane's slice in service mode. All times are session-relative (the
/// caller subtracts `t0` where it applies).
pub(crate) struct SimAggregates {
    /// Latest busy instant of the session's nodes, crash-clamped,
    /// relative to the session's `t0`.
    pub(crate) makespan: SimTime,
    pub(crate) messages: u64,
    pub(crate) bytes: u64,
    pub(crate) traffic: StageTraffic,
    pub(crate) fault_counters: FaultCounters,
    /// Per-stage busy time of the session's nodes (issuance timeline not
    /// yet folded in).
    pub(crate) stage_busy: StageTotals,
    /// Sparse per-node stage rows, session-local node ids.
    pub(crate) node_stage_busy: Vec<(NodeId, StageTotals)>,
}

/// Assemble a [`RunReport`] from a finished session's shared state and
/// its simulator aggregates. Field-for-field the tail of the pre-service
/// `execute` — both paths now end here, which is what the n=1
/// transparency tier byte-compares.
pub(crate) fn finish_report(shared: Shared<'_>, agg: SimAggregates) -> RunReport {
    let t0 = shared.t0;
    let total_tasks = shared.expanded.len() as u64;
    let timing = shared.timing.into_inner();
    let setup_done = timing.setup_done.saturating_sub(t0);
    let store = if shared.config.mode == ExecutionMode::Validate {
        Some(shared.store.into_inner())
    } else {
        None
    };

    assert_eq!(
        timing.tasks_done, total_tasks,
        "deadlock or lost tasks: {} of {} completed",
        timing.tasks_done, total_tasks
    );

    let audit = shared.audit.map(|cell| {
        run_audits(
            &cell.into_inner(),
            &shared.waits_init,
            &shared.compact_ops,
            shared.faults.is_some(),
        )
    });

    // Fault schedule counts are scoped to the session's node range —
    // the whole machine on the legacy path.
    let lo = shared.base;
    let hi = shared.base + shared.config.nodes;
    let recovery = shared.faults.as_ref().map(|fr| {
        let mut r = fr.stats.borrow().clone();
        r.seed = fr.cfg.seed;
        r.crashes = fr
            .plan
            .crashes()
            .iter()
            .filter(|&&(n, _)| n >= lo && n < hi)
            .count() as u64;
        r.slow_nodes = fr
            .plan
            .slow_nodes()
            .iter()
            .filter(|&&(n, _)| n >= lo && n < hi)
            .count() as u64;
        r.dropped = agg.fault_counters.dropped;
        r.duplicated = agg.fault_counters.duplicated;
        r.crash_dropped = agg.fault_counters.crash_dropped;
        r
    });

    // Fold the issuance/logical/dynamic-check timeline in once: under
    // DCR it is replicated identically on every node, so multiplying it
    // by the node count would misstate the work the paper attributes to
    // the pipeline front end.
    let mut stage_busy = agg.stage_busy;
    stage_busy.merge(&shared.issuance_stage);

    RunReport {
        makespan: agg.makespan,
        setup_done,
        elapsed: agg.makespan.saturating_sub(setup_done),
        tasks: total_tasks,
        messages: agg.messages,
        bytes: agg.bytes,
        dynamic_check_time: shared.dynamic_check_time,
        issuance_span: shared.frontier.last().copied().unwrap_or(SimTime::ZERO),
        stage_busy,
        node_stage_busy: agg.node_stage_busy,
        stage_messages: agg.traffic.messages,
        stage_bytes: agg.traffic.bytes,
        trace: shared.trace.map(RefCell::into_inner),
        audit,
        store,
        analysis_cache: shared.expanded.analysis_cache,
        trace_replay: shared.trace_stats.into_inner(),
        recovery,
    }
}

/// Execute `program` under `config`, returning the run report.
pub fn execute(program: &Program, config: &RuntimeConfig) -> RunReport {
    let expanded = expand_program(program, config);
    let total_tasks = expanded.len() as u64;
    let faults = config.faults.as_ref().map(|fc| {
        FaultRuntime::new(
            fc.clone(),
            FaultPlan::generate(fc.seed, config.nodes, &fc.to_spec()),
            expanded.len(),
        )
    });
    let shared = build_shared(program, config, 0, SimTime::ZERO, expanded, faults);

    let behaviors: Vec<RtNode<'_>> = (0..config.nodes)
        .map(|_| {
            let mut node = RtNode::unbound();
            node.bind(shared.clone());
            node
        })
        .collect();
    let mut sim = Simulator::new(shared.machine.clone(), Network::aries(), behaviors);
    if let Some(spec) = &config.net_hierarchy {
        sim = sim.with_interconnect(Box::new(HierNetwork::new(Network::aries(), spec.clone())));
    }
    if let Some(fr) = &shared.faults {
        sim.set_fault_plan(fr.plan.clone());
    }

    inject_session(&mut sim, &shared, SimTime::ZERO);

    // Never cap below the machine-size-derived floor: a huge machine's
    // legitimate traffic must not trip the runaway guard.
    let max_events = event_budget(
        total_tasks,
        program.ops.len(),
        config.nodes,
        config.faults.is_some(),
    )
    .max(sim.default_event_cap());
    if let Err(err) = sim.try_run(max_events) {
        // The guard is structured data ([`il_machine::SimError`]); at this
        // boundary a trip still means a protocol bug, so escalate.
        panic!("{err}");
    }

    let stats = sim.stats().clone();
    let agg = SimAggregates {
        makespan: sim.makespan(),
        messages: stats.messages,
        bytes: stats.bytes,
        traffic: stats.traffic,
        fault_counters: stats.faults,
        // Simulator-side per-node stage busy time (distribution,
        // physical, exec, network); the analytic issuance timeline is
        // not per-node.
        stage_busy: sim.stage_totals(),
        node_stage_busy: sim.node_stage_busy(),
    };
    drop(sim);
    let shared = Rc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("simulator retained shared state"));
    finish_report(shared, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq};
    use il_geometry::Domain;
    use il_region::{equal_partition_1d, FieldId, FieldKind, FieldSpaceDesc};

    /// Regression: the tracing signature once hashed only the domain's
    /// *volume* and each requirement's partition + functor, so launches
    /// with equal volume but different privileges or field lists
    /// collided — and tracing replayed the wrong trace for them. The
    /// full launch shape must distinguish all of these.
    #[test]
    fn same_volume_launches_hash_differently() {
        let mut b = ProgramBuilder::new();
        let mut fs = FieldSpaceDesc::new();
        let f = fs.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fs);
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = equal_partition_1d(&mut b.forest, r.space, 4);
        let ident = b.identity_functor();
        let t = b.task_modeled("t");
        let mk = |privilege, fields: Vec<FieldId>| IndexLaunchDesc {
            task: t,
            domain: Domain::range(4),
            reqs: vec![RegionReq {
                partition: p,
                functor: ident,
                privilege,
                fields,
                tree: r.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::ZERO),
            shard: None,
        };
        b.index_launch(mk(Privilege::Read, vec![]));
        b.index_launch(mk(Privilege::ReadWrite, vec![]));
        b.index_launch(mk(Privilege::Read, vec![f]));
        b.index_launch(mk(Privilege::Read, vec![]));
        let program = b.build();
        let sigs: Vec<u64> = program
            .ops
            .iter()
            .map(|op| op_signature(&program, op))
            .collect();
        // All four ops share task, domain volume, partition, and functor
        // — the old hash collided on every pair.
        assert_ne!(sigs[0], sigs[1], "privilege must affect the signature");
        assert_ne!(sigs[0], sigs[2], "field list must affect the signature");
        assert_ne!(sigs[1], sigs[2]);
        // Genuinely identical launches still share one (that is what
        // makes tracing replay work at all).
        assert_eq!(sigs[0], sigs[3]);
    }

    /// Transparency of the trace-replay stats surface: `RunReport`
    /// carries `trace_replay` counters, but `stage_json()` — the
    /// byte-compared observable in the equivalence tiers — must not
    /// mention them, and must be identical with replay on and off even
    /// when a trace actually captures and replays.
    #[test]
    fn trace_replay_stats_stay_out_of_stage_json() {
        let mut b = ProgramBuilder::new();
        let mut fs = FieldSpaceDesc::new();
        let f = fs.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fs);
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = equal_partition_1d(&mut b.forest, r.space, 4);
        let ident = b.identity_functor();
        let t = b.task_modeled("t");
        for _ in 0..6 {
            b.index_launch(IndexLaunchDesc {
                task: t,
                domain: Domain::range(4),
                reqs: vec![RegionReq {
                    partition: p,
                    functor: ident,
                    privilege: Privilege::ReadWrite,
                    fields: vec![f],
                    tree: r.tree,
                    field_space: fs,
                }],
                scalars: vec![],
                cost: CostSpec::Uniform(SimTime::us(10)),
                shard: None,
            });
        }
        let program = b.build();
        let cfg_on = RuntimeConfig::scale(2);
        let on = execute(&program, &cfg_on);
        let off = execute(&program, &cfg_on.clone().with_trace_replay(false));
        assert!(
            on.trace_replay.captured > 0 && on.trace_replay.replayed > 0,
            "identical launches must capture and replay: {:?}",
            on.trace_replay
        );
        // The `trace_replay` *stage bucket* is part of the fixed stage
        // schema (present, zero simulated time, on and off alike); the
        // capture/replay *counters* must never leak into it.
        let json = on.stage_json().to_string();
        for counter in ["captured", "replayed", "invalidated", "analyses_skipped"] {
            assert!(
                !json.contains(counter),
                "trace-replay counter {counter:?} leaked into stage JSON: {json}"
            );
        }
        assert_eq!(json, off.stage_json().to_string(), "stage JSON differs with replay on/off");
        assert_eq!(on.makespan, off.makespan);
    }

    /// The physical-analysis weight is ceil(log2 |P|) per requirement: a
    /// 4-way partition costs exactly 2 BVH levels (the old floor+1
    /// formula charged 3).
    #[test]
    fn phys_weight_is_ceil_log2() {
        let cases = [(2u32, 1u32), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)];
        for (children, want) in cases {
            let got = children.max(2).next_power_of_two().trailing_zeros();
            assert_eq!(got, want, "|P| = {children}");
        }
    }
}
