//! The distributed executor: the §5 pipeline on the simulated machine.
//!
//! Responsibilities per stage:
//!
//! * **Issuance + logical analysis** — a per-run timeline (the
//!   application / top-level-task thread). Under DCR it is replicated
//!   identically on every node with no communication, so one computation
//!   serves all nodes; without DCR it belongs to node 0. Index launches
//!   cost O(1) per launch here; with IDX disabled each launch pays O(|D|).
//!   Tracing replaces per-task analysis with cheap replay after the first
//!   occurrence of a launch signature — and, without DCR, forces index
//!   launches to expand *before* distribution (§6.2.1).
//! * **Distribution** — DCR: sharding functor selects the O(|D|_local)
//!   local points on each node, no communication. Non-DCR: fixed-size
//!   slice descriptors scatter down a binomial tree (IDX), or one message
//!   per task streams out of node 0 (No IDX / tracing-forced expansion),
//!   serializing on node 0's NIC.
//! * **Physical analysis** — charged O(log |P|) per local task on the
//!   owning node's runtime thread; the dependence *edges* come from the
//!   exact oracle in [`crate::depgraph`].
//! * **Execution + data movement** — tasks run on the owner's GPU;
//!   completions send credit messages to consumer nodes; cross-node
//!   copies pay α–β network costs, and in validation mode move real
//!   bytes between physical instances.

use crate::config::{ExecutionMode, FaultConfig, RuntimeConfig};
use crate::context::{InstanceStore, TaskContext};
use crate::depgraph::{
    expand_program, launch_signature, AnalysisCacheStats, ExpandedProgram, OpSafety, TaskRef,
};
use crate::program::Program;
use crate::replay::TraceReplayStats;
use crate::sdc::{NoReplication, ReplicationPolicy, SdcStats};
use crate::trace::{run_audits, AuditData, AuditReport, TraceEvent, TraceLog};
use il_machine::{
    FaultCounters, FaultPlan, HierNetwork, MachineDesc, Network, NodeBehavior, NodeCtx, NodeId,
    SimTime, Simulator, Stage, StageTotals, StageTraffic,
};
use il_region::{
    domain_intersection, FieldId, FieldKind, IndexSpaceId, PhysicalInstance, Privilege,
    RegionTreeId,
};
use il_testkit::Json;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// Result of one runtime execution.
#[derive(Debug)]
pub struct RunReport {
    /// Latest simulated time any resource is busy.
    pub makespan: SimTime,
    /// Completion time of the last setup (untimed) task.
    pub setup_done: SimTime,
    /// `makespan − setup_done`: the duration of the timed portion, used
    /// for throughput.
    pub elapsed: SimTime,
    /// Point tasks executed.
    pub tasks: u64,
    /// Cross-node messages sent.
    pub messages: u64,
    /// Bytes injected into the network.
    pub bytes: u64,
    /// Total issuance-thread time spent in dynamic safety checks.
    pub dynamic_check_time: SimTime,
    /// Final value of the issuance/logical-analysis frontier.
    pub issuance_span: SimTime,
    /// Aggregate busy time per pipeline stage: per-node runtime threads
    /// and processors, plus the issuance/logical/dynamic-check timeline
    /// counted once (under DCR that timeline is replicated identically
    /// on every node; it is not multiplied here).
    pub stage_busy: StageTotals,
    /// Per-node, simulator-side per-stage busy time (distribution,
    /// physical, exec, network). Sparse: one `(node, totals)` row per
    /// node with nonzero totals, sorted by node id — on a 100k-node
    /// machine where only a few nodes ran work, the report stays small.
    /// The analytically computed issuance timeline is *not* folded in —
    /// each row's runtime-thread stages sum to at most the makespan.
    pub node_stage_busy: Vec<(NodeId, StageTotals)>,
    /// Cross-node messages by sending stage.
    pub stage_messages: [u64; Stage::COUNT],
    /// Bytes injected into the network by sending stage.
    pub stage_bytes: [u64; Stage::COUNT],
    /// The structured per-stage event log (when [`RuntimeConfig::trace`]).
    pub trace: Option<TraceLog>,
    /// Pipeline-audit outcome (when [`RuntimeConfig::audit`]).
    pub audit: Option<AuditReport>,
    /// Final instances (validation mode only).
    pub store: Option<InstanceStore>,
    /// Expansion-time analysis-cache accounting. Host-side observability
    /// only — deliberately *not* part of [`RunReport::stage_json`], so
    /// cache-on and cache-off runs stay byte-identical there.
    pub analysis_cache: AnalysisCacheStats,
    /// Expansion-time trace capture/replay accounting (plus, under fault
    /// injection, invalidations forced by crash re-shards of replayed
    /// ops). Host-side observability only — like `analysis_cache`,
    /// deliberately *not* part of [`RunReport::stage_json`], so replay-on
    /// and replay-off runs stay byte-identical there.
    pub trace_replay: TraceReplayStats,
    /// Fault-injection and recovery accounting (when
    /// [`RuntimeConfig::faults`] is set; `None` on fault-free runs, which
    /// therefore stay byte-identical to a build without the subsystem).
    pub recovery: Option<RecoveryStats>,
    /// Silent-data-corruption and defense accounting: `Some` when the
    /// fault plan schedules corruption or a replication policy is active.
    /// Host-side observability only — like `analysis_cache`, deliberately
    /// *not* part of [`RunReport::stage_json`], so corruption-free
    /// defense-off runs stay byte-identical to a build without the
    /// subsystem.
    pub sdc: Option<SdcStats>,
}

/// Counters of fault activity and the recovery protocol's responses,
/// deterministic for a given `(seed, RuntimeConfig)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// The fault seed the schedule was generated from.
    pub seed: u64,
    /// Node crashes the plan scheduled.
    pub crashes: u64,
    /// Nodes running with a slow-down multiplier.
    pub slow_nodes: u64,
    /// Data-plane messages the network dropped.
    pub dropped: u64,
    /// Data-plane messages the network duplicated.
    pub duplicated: u64,
    /// Events discarded because their destination node had crashed.
    pub crash_dropped: u64,
    /// Acknowledgement-timeout probes the coordinator ran.
    pub recovery_checks: u64,
    /// Task retry directives issued (a task may be retried repeatedly
    /// across backoff rounds until its completion is journaled).
    pub retried_tasks: u64,
    /// Per-op task groups re-sharded off a confirmed-dead node.
    pub resharded_groups: u64,
    /// Launch-level safety re-analyses run for re-mapped launches.
    pub reanalyses: u64,
    /// Credit messages discarded as duplicate deliveries of an already
    /// paid (producer, consumer) edge.
    pub duplicate_credits: u64,
    /// Credits that arrived after a retry's journal snapshot had already
    /// settled their edge (discarded — the settlement paid them).
    pub late_credits: u64,
}

impl RunReport {
    /// Per-stage summary as a JSON object: for every stage, busy
    /// nanoseconds plus message/byte counts attributed to it.
    pub fn stage_json(&self) -> Json {
        let mut obj = Json::obj();
        for (stage, busy) in self.stage_busy.iter() {
            obj = obj.set(
                stage.name(),
                Json::obj()
                    .set("busy_ns", busy.as_ns())
                    .set("messages", self.stage_messages[stage.index()])
                    .set("bytes", self.stage_bytes[stage.index()]),
            );
        }
        // Fault/recovery counters ride under their own key ("recovery" is
        // already taken by the stage loop above) — and only when fault
        // injection was on, so fault-free stage summaries are unchanged.
        if let Some(r) = &self.recovery {
            obj = obj.set(
                "faults",
                Json::obj()
                    .set("seed", r.seed)
                    .set("crashes", r.crashes)
                    .set("slow_nodes", r.slow_nodes)
                    .set("dropped", r.dropped)
                    .set("duplicated", r.duplicated)
                    .set("crash_dropped", r.crash_dropped)
                    .set("recovery_checks", r.recovery_checks)
                    .set("retried_tasks", r.retried_tasks)
                    .set("resharded_groups", r.resharded_groups)
                    .set("reanalyses", r.reanalyses)
                    .set("duplicate_credits", r.duplicate_credits)
                    .set("late_credits", r.late_credits),
            );
        }
        obj
    }
}

#[derive(Debug, Clone)]
pub(crate) enum Msg {
    /// DCR: operation `op` clears logical analysis on this node.
    InjectOp { op: u32 },
    /// Non-DCR: node 0 starts distributing operation `op`.
    DistributeOp { op: u32 },
    /// Non-DCR, IDX: a batch of slice descriptors `slices[lo..hi]` of
    /// operation `op` (scattering down the broadcast tree).
    SliceBatch { op: u32, lo: u32, hi: u32 },
    /// Non-DCR, expanded: a single task launch arriving at its owner.
    TaskArrive { task: TaskRef },
    /// Dependence credits (completions/copies) for consumer tasks, all
    /// from producer `from` (the key the duplicate-delivery dedup uses).
    /// `corrupt` is set in transit when a corrupt sender's payload draw
    /// fires — the receiver decides (by defense configuration) whether to
    /// detect it or accept the flipped payload.
    Credits { from: TaskRef, items: Vec<(TaskRef, u32)>, corrupt: bool },
    /// A task finished executing on this node's processor.
    TaskDone { task: TaskRef },
    /// Non-DCR: completion/coordination records arriving at the
    /// centralized runtime on node 0 (`count` units to process).
    CentralNotify { count: u32 },
    /// Recovery (faults only): a completion report reaching the node-0
    /// coordinator's journal, over the reliable control channel.
    Complete { task: TaskRef },
    /// Recovery: the coordinator's acknowledgement-timeout probe for `op`
    /// (self-scheduled with exponential backoff until fully journaled).
    RecoveryCheck { op: u32, attempt: u32 },
    /// Recovery: re-issue `items` (task, producers the coordinator's
    /// journal shows completed) on the receiving node — the original
    /// owner, or a survivor the group was re-sharded onto. Settlement is
    /// per-edge so it composes with the credit dedup: an edge settled
    /// from the journal discards that producer's in-flight credit
    /// message instead of double-counting it.
    Retry { op: u32, items: Vec<(TaskRef, Vec<TaskRef>)> },
    /// SDC defense: execute a replica of `task` (vote round `attempt`) on
    /// this node and digest its output for the vote `owner` runs. With
    /// `fallback` the receiver is the session base — corruption-exempt by
    /// construction — which executes once more and commits without a vote.
    ReplicaExec { task: TaskRef, attempt: u32, owner: NodeId, fallback: bool },
    /// SDC defense: a primary/replica/fallback execution of `task`
    /// finished on this node's processor; digest it under
    /// [`Stage::Verify`] and route the result into the vote (or, for a
    /// fallback, straight into the commit).
    ReplicaDone { task: TaskRef, attempt: u32, owner: NodeId, fallback: bool },
    /// SDC defense: a replica's output digest arriving at the vote owner
    /// over the control channel.
    ReplicaDigest { task: TaskRef, attempt: u32, digest: u64 },
}

#[derive(Default, Clone, Copy)]
struct TState {
    injected: bool,
    analysis_done: SimTime,
    waits: u32,
    started: bool,
}

struct Timing {
    setup_done: SimTime,
    last_done: SimTime,
    tasks_done: u64,
}

pub(crate) struct Shared<'p> {
    pub(crate) program: &'p Program,
    pub(crate) expanded: ExpandedProgram,
    pub(crate) config: RuntimeConfig,
    pub(crate) machine: MachineDesc,
    /// First machine node of this session's range `[base, base +
    /// config.nodes)`. Zero on the legacy single-program path; service
    /// mode places each session at its slot's base. All program-level
    /// node ids (task owners, distribution groups) stay session-local;
    /// the executor translates at every machine boundary via
    /// [`Shared::abs`]/[`Shared::local`].
    pub(crate) base: NodeId,
    /// Admission time of this session on the shared machine clock. Zero
    /// on the legacy path. Reported times (makespan, setup, trace-event
    /// starts) are relative to `t0`, which is what makes a session's
    /// report independent of when — and next to whom — it ran.
    pub(crate) t0: SimTime,
    /// Issuance/logical frontier per op, relative to `t0`.
    pub(crate) frontier: Vec<SimTime>,
    /// Per-stage decomposition of the issuance timeline (merged once
    /// into the report's stage totals).
    pub(crate) issuance_stage: StageTotals,
    /// Initial wait counts (deps + copies).
    pub(crate) waits_init: Vec<u32>,
    /// Sum over reqs of ceil(log2 |P_req|), per op (physical-analysis
    /// multiplier).
    pub(crate) phys_weight: Vec<u32>,
    /// Whether each op travels as compact slices without DCR.
    pub(crate) compact_ops: Vec<bool>,
    pub(crate) store: RefCell<InstanceStore>,
    /// Reduction buffers already identity-filled, keyed by
    /// `(tree, subspace, field, epoch id)`: the first epoch member to
    /// execute fills; the rest accumulate (validation mode only).
    reduce_filled: RefCell<HashSet<(RegionTreeId, IndexSpaceId, FieldId, u32)>>,
    timing: RefCell<Timing>,
    dynamic_check_time: SimTime,
    /// Structured event log (when `config.trace`). Pure observability:
    /// recording never changes simulated time.
    trace: Option<RefCell<TraceLog>>,
    /// Pipeline-audit counters (when `config.audit`).
    audit: Option<RefCell<AuditData>>,
    /// Fault-injection runtime state (when `config.faults`). `None` keeps
    /// every recovery code path inert.
    pub(crate) faults: Option<FaultRuntime>,
    /// Silent-data-corruption state: `Some` when the fault plan schedules
    /// corruption or a replication policy is active; `None` keeps every
    /// defense code path inert (and the report's `sdc` absent).
    pub(crate) sdc: Option<SdcRuntime>,
    /// Trace-replay stats, seeded from the expansion and bumped when a
    /// crash re-shard lands on a replayed op (the trace that produced it
    /// is then stale for any later capture epoch).
    trace_stats: RefCell<TraceReplayStats>,
}

/// Runtime-side state of the recovery protocol.
///
/// The simulated machine can crash nodes, drop and duplicate data-plane
/// messages, and slow nodes down (see [`il_machine::fault`]); this is the
/// runtime's answer. Every completed task reports to a coordinator
/// journal on node 0 over the reliable control channel; per-op
/// acknowledgement timers probe the journal with exponential backoff and
/// re-issue unacknowledged tasks with a journal-snapshot wait count; after
/// `max_retries` probes, a task group whose assigned node is confirmed
/// crashed is re-sharded onto a surviving node (charging a launch-level
/// re-analysis). The cross-node cells model coordinator state cheaply —
/// the simulation is single-threaded and the protocol only reads them on
/// node 0 or for first-completion dedup, both of which a real
/// implementation keeps node-local.
pub(crate) struct FaultRuntime {
    cfg: FaultConfig,
    pub(crate) plan: FaultPlan,
    /// First-completion guard: a task's completion effects (body, timing,
    /// credits, report) run exactly once, however many times crashes and
    /// retries make it execute.
    completed: RefCell<Vec<bool>>,
    /// Node-0 coordinator journal: tasks whose completion report arrived.
    journal: RefCell<Vec<bool>>,
    /// `(op, dead static owner) → survivor` re-sharding decisions.
    reassigned: RefCell<HashMap<(u32, NodeId), NodeId>>,
    stats: RefCell<RecoveryStats>,
}

impl FaultRuntime {
    /// Fresh recovery state over `plan` for an `n_tasks`-task program.
    pub(crate) fn new(cfg: FaultConfig, plan: FaultPlan, n_tasks: usize) -> FaultRuntime {
        FaultRuntime {
            cfg,
            plan,
            completed: RefCell::new(vec![false; n_tasks]),
            journal: RefCell::new(vec![false; n_tasks]),
            reassigned: RefCell::new(HashMap::new()),
            stats: RefCell::new(RecoveryStats::default()),
        }
    }
}

/// Runtime-side state of the silent-data-corruption defense.
///
/// Corruption never announces itself — a corrupt node's task output or
/// message payload is silently flipped (see the `corrupt_*` draws on
/// [`FaultPlan`]). The defense executes policy-selected tasks on `k`
/// nodes, digests each output, and commits only a unanimous vote;
/// divergence quarantines the result and re-runs the task. The
/// per-(node, round) corruption deltas are nonzero and pairwise distinct
/// (locked by a plan-level test), so a unanimous vote *proves* every
/// replica executed clean — which is what makes "zero escapes under any
/// active policy covering the corrupted tasks" a theorem, not a
/// probability.
pub(crate) struct SdcRuntime {
    /// Resolved replication policy ([`NoReplication`] when corruption is
    /// scheduled with no defense configured — the negative control).
    policy: Box<dyn ReplicationPolicy>,
    /// Whether the policy can ever replicate. False means corruption
    /// escapes: task-output flips commit unverified, payload flips are
    /// accepted by receivers.
    defense_on: bool,
    stats: RefCell<SdcStats>,
    /// `(producer, consumer)` credit edges whose corrupted payload a
    /// receiver accepted (defense off): validation mode flips a bit in
    /// the copied data when the consumer materializes it.
    corrupt_edges: RefCell<HashSet<(TaskRef, TaskRef)>>,
}

impl<'p> Shared<'p> {
    /// Machine node of session-local node id `local`.
    #[inline]
    pub(crate) fn abs(&self, local: NodeId) -> NodeId {
        self.base + local
    }

    /// Session-local node id of machine node `node`.
    #[inline]
    pub(crate) fn local(&self, node: NodeId) -> NodeId {
        node - self.base
    }

    /// Record a trace event, translating machine node ids and absolute
    /// times into the session frame (identity on the legacy path, where
    /// `base` and `t0` are both zero).
    fn record(&self, mut event: TraceEvent) {
        if event.duration == SimTime::ZERO {
            return;
        }
        if let Some(trace) = &self.trace {
            event.node = self.local(event.node);
            event.start = event.start.saturating_sub(self.t0);
            trace.borrow_mut().record(event);
        }
    }
}

pub(crate) struct RtNode<'p> {
    /// The session this node currently executes, `None` when the node is
    /// idle between service sessions. Rebinding happens only after the
    /// previous session's lane fully drained, so a message can never
    /// reach a node bound to the wrong session; an unbound node receiving
    /// one anyway discards it defensively.
    shared: Option<Rc<Shared<'p>>>,
    states: HashMap<TaskRef, TState>,
    /// Non-DCR, compact ops: local tasks of each op still running (the
    /// slice's completion is reported centrally once, when the last
    /// local task finishes).
    slice_remaining: HashMap<u32, u32>,
    /// Faults only: `(producer, consumer)` credit edges already paid on
    /// this node, so duplicated credit messages are discarded.
    paid: HashSet<(TaskRef, TaskRef)>,
    /// Faults only: the subset of `paid` that was settled from a retry's
    /// journal snapshot rather than a delivered credit message — the
    /// producer's own credits may still be in flight, and must count as
    /// late (not duplicated) when they land.
    journal_settled: HashSet<(TaskRef, TaskRef)>,
    /// SDC defense: open digest votes this node owns, keyed by
    /// `(task, round)` → (expected vote count, digests so far).
    votes: HashMap<(TaskRef, u32), (usize, Vec<u64>)>,
}

impl<'p> RtNode<'p> {
    /// An idle node awaiting its first session.
    pub(crate) fn unbound() -> Self {
        RtNode {
            shared: None,
            states: HashMap::new(),
            slice_remaining: HashMap::new(),
            paid: HashSet::new(),
            journal_settled: HashSet::new(),
            votes: HashMap::new(),
        }
    }

    /// Bind this node to a session, resetting all per-session state.
    pub(crate) fn bind(&mut self, shared: Rc<Shared<'p>>) {
        self.shared = Some(shared);
        self.states.clear();
        self.slice_remaining.clear();
        self.paid.clear();
        self.journal_settled.clear();
        self.votes.clear();
    }

    /// Release the session binding (drops this node's `Rc` so the
    /// service can unwrap the shared state into a report).
    pub(crate) fn unbind(&mut self) {
        self.shared = None;
    }

    /// The bound session. Only called from paths `on_message` already
    /// guarded, so the expect is unreachable.
    fn sh(&self) -> Rc<Shared<'p>> {
        self.shared.clone().expect("message dispatched to an unbound node")
    }

    fn state(&mut self, task: TaskRef) -> &mut TState {
        let init = self.sh().waits_init[task as usize];
        self.states.entry(task).or_insert(TState {
            injected: false,
            analysis_done: SimTime::ZERO,
            waits: init,
            started: false,
        })
    }

    /// Charge mapping + physical analysis for a local task and mark it
    /// ready for dependence resolution. Idempotent: a duplicated launch
    /// message or a recovery retry of an already injected task is a no-op.
    fn inject_task(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef) {
        if self.state(task).injected {
            return;
        }
        let shared = self.sh();
        let cost = &shared.config.cost;
        let op = shared.expanded.tasks[task as usize].op;
        let phys = shared.phys_weight[op as usize];
        let prev_stage = ctx.stage();
        ctx.set_stage(Stage::Distribution);
        let dist_start = ctx.now();
        ctx.charge(cost.distribute_point);
        ctx.set_stage(Stage::Physical);
        let phys_start = ctx.now();
        ctx.charge(cost.map_task + cost.physical_per_task * phys as u64);
        let now = ctx.now();
        shared.record(TraceEvent {
            op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Distribution,
            start: dist_start,
            duration: phys_start - dist_start,
        });
        shared.record(TraceEvent {
            op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Physical,
            start: phys_start,
            duration: now - phys_start,
        });
        // Callers (slice scatter, task streaming) keep sending
        // distribution messages after this returns.
        ctx.set_stage(prev_stage);
        let st = self.state(task);
        st.injected = true;
        st.analysis_done = now;
        self.try_start(ctx, task);
    }

    /// Start execution if analysis is done and all credits arrived.
    fn try_start(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef) {
        let st = *self.state(task);
        if !st.injected || st.waits > 0 || st.started {
            return;
        }
        self.state(task).started = true;
        self.launch_execution(ctx, task, 0);
    }

    /// Dispatch one execution of `task` on this node's processor.
    /// `attempt` counts SDC vote rounds (always 0 without an active
    /// replication policy). A replicated task recruits its buddy nodes
    /// over the control channel and defers completion to the digest vote;
    /// everything else completes directly via `TaskDone`, exactly as
    /// before the defense existed.
    fn launch_execution(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef, attempt: u32) {
        let shared = self.sh();
        let inst = &shared.expanded.tasks[task as usize];
        let op = inst.op as usize;
        let launch = shared.program.ops[op].launch();
        let gpus = shared.machine.gpus_per_node.max(1);
        let local_proc = shared.machine.cpus_per_node + (inst.point_idx as usize % gpus);
        let duration = shared.config.cost.start_task + launch.cost.at(inst.point);
        let exec_start = ctx.now().max(ctx.proc_free(local_proc));
        let done = ctx.exec_on_proc(local_proc, duration);
        shared.record(TraceEvent {
            op: inst.op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Exec,
            start: exec_start,
            duration,
        });
        let buddies = self.replica_buddies(&shared, task, shared.local(ctx.node()));
        if buddies.is_empty() {
            ctx.send_self_at(done, Msg::TaskDone { task });
            return;
        }
        let sdc = shared.sdc.as_ref().expect("buddies imply an active policy");
        {
            let mut stats = sdc.stats.borrow_mut();
            if attempt == 0 {
                stats.replicated_tasks += 1;
            }
            stats.replicas += buddies.len() as u64;
        }
        self.votes.insert((task, attempt), (1 + buddies.len(), Vec::new()));
        let owner = ctx.node();
        let prev = ctx.stage();
        ctx.set_stage(Stage::Verify);
        for buddy in buddies {
            ctx.send_control(
                shared.abs(buddy),
                Msg::ReplicaExec { task, attempt, owner, fallback: false },
                shared.config.cost.task_message_bytes,
            );
        }
        ctx.set_stage(prev);
        ctx.send_self_at(done, Msg::ReplicaDone { task, attempt, owner, fallback: false });
    }

    /// The replica nodes the policy recruits for `task` when it executes
    /// on `exec_local`: the next `k - 1` distinct never-crashing nodes in
    /// rotation. Deterministic in (task, node), so the escape check at
    /// completion recomputes the same answer. Empty when the task is
    /// unreplicated — or when the session has no other usable node, in
    /// which case the task falls back to unverified execution.
    fn replica_buddies(
        &self,
        shared: &Shared<'_>,
        task: TaskRef,
        exec_local: NodeId,
    ) -> Vec<NodeId> {
        let Some(sdc) = &shared.sdc else { return Vec::new() };
        if !sdc.defense_on {
            return Vec::new();
        }
        let inst = &shared.expanded.tasks[task as usize];
        let launch = shared.program.ops[inst.op as usize].launch();
        let k = sdc.policy.replicas(inst.op, launch.cost.at(inst.point));
        if k <= 1 {
            return Vec::new();
        }
        let nodes = shared.config.nodes;
        let plan = shared.faults.as_ref().map(|fr| &fr.plan);
        let mut out = Vec::new();
        for step in 1..nodes {
            if out.len() == k - 1 {
                break;
            }
            let candidate = (exec_local + step) % nodes;
            if plan.is_some_and(|p| p.ever_crashes(shared.abs(candidate))) {
                continue;
            }
            out.push(candidate);
        }
        out
    }

    /// Digest the output this node's execution of `task` produced in vote
    /// round `attempt`. Models the content checksum
    /// ([`il_region::PhysicalInstance::digest`] is the real-data
    /// analogue): clean executions of the same task agree exactly, while
    /// a corrupt node's firing draw XORs in its nonzero per-(node, round)
    /// delta — so no corrupt replica ever collides with a clean one, or
    /// with another corrupt one.
    fn output_digest(&self, shared: &Shared<'_>, task: TaskRef, attempt: u32, node: NodeId) -> u64 {
        let seed = shared.faults.as_ref().map_or(0, |fr| fr.cfg.seed);
        let clean = mix64((task as u64) ^ seed.rotate_left(32));
        match shared
            .faults
            .as_ref()
            .and_then(|fr| fr.plan.corrupt_task_output(node, sdc_nonce(task, attempt)))
        {
            Some(delta) => clean ^ delta,
            None => clean,
        }
    }

    /// Record one digest vote for `(task, attempt)`. When the last vote
    /// lands: a unanimous vote commits (agreement proves clean — the
    /// corruption deltas are distinct); a divergent vote quarantines the
    /// result and re-runs the task, bounded by the retry budget, after
    /// which a final fallback execution on the corruption-exempt session
    /// base commits honest-by-construction.
    fn record_vote(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef, attempt: u32, digest: u64) {
        let Some((expected, votes)) = self.votes.get_mut(&(task, attempt)) else {
            // Vote already decided, or state from before a crash re-shard
            // — a stale digest is harmless.
            return;
        };
        votes.push(digest);
        if votes.len() < *expected {
            return;
        }
        let (_, votes) = self.votes.remove(&(task, attempt)).expect("entry checked above");
        let shared = self.sh();
        let sdc = shared.sdc.as_ref().expect("a vote implies the sdc runtime");
        if votes.iter().all(|&d| d == votes[0]) {
            self.complete_task(ctx, task);
            return;
        }
        {
            let mut stats = sdc.stats.borrow_mut();
            stats.detected += 1;
            stats.quarantined += 1;
            stats.reruns += 1;
        }
        let budget = shared.faults.as_ref().map_or(3, |fr| fr.cfg.max_retries);
        if attempt + 1 < budget {
            self.launch_execution(ctx, task, attempt + 1);
            return;
        }
        // Rounds exhausted (reachable only at extreme corruption rates):
        // one final execution on the session base, which never corrupts
        // by construction, commits without a vote.
        let prev = ctx.stage();
        ctx.set_stage(Stage::Verify);
        if ctx.node() == shared.base {
            self.handle_replica_exec(ctx, task, attempt + 1, shared.base, true);
        } else {
            ctx.send_control(
                shared.base,
                Msg::ReplicaExec { task, attempt: attempt + 1, owner: shared.base, fallback: true },
                shared.config.cost.task_message_bytes,
            );
        }
        ctx.set_stage(prev);
    }

    /// Execute a replica (or base fallback) of `task` on this node's
    /// processor and schedule its digest step at completion.
    fn handle_replica_exec(
        &mut self,
        ctx: &mut NodeCtx<'_, Msg>,
        task: TaskRef,
        attempt: u32,
        owner: NodeId,
        fallback: bool,
    ) {
        let shared = self.sh();
        let inst = &shared.expanded.tasks[task as usize];
        let launch = shared.program.ops[inst.op as usize].launch();
        let gpus = shared.machine.gpus_per_node.max(1);
        let local_proc = shared.machine.cpus_per_node + (inst.point_idx as usize % gpus);
        let duration = shared.config.cost.start_task + launch.cost.at(inst.point);
        let exec_start = ctx.now().max(ctx.proc_free(local_proc));
        let done = ctx.exec_on_proc(local_proc, duration);
        shared.record(TraceEvent {
            op: inst.op,
            task: Some(task),
            node: ctx.node(),
            stage: Stage::Verify,
            start: exec_start,
            duration,
        });
        ctx.send_self_at(done, Msg::ReplicaDone { task, attempt, owner, fallback });
    }

    /// Run the body (validation mode) and fan out completion credits.
    fn complete_task(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef) {
        let shared = self.sh();
        // First completion wins, globally: a task can execute both on a
        // node that later crashed and on the survivor it was re-sharded
        // to; its effects (body, timing, credits, report) must not repeat.
        if let Some(fr) = &shared.faults {
            let mut completed = fr.completed.borrow_mut();
            if completed[task as usize] {
                return;
            }
            completed[task as usize] = true;
        }
        // SDC: an unreplicated execution on a corrupt node may have
        // produced a silently flipped output — committing it here is
        // exactly the escape the defense exists to prevent. Counted, and
        // in validation mode the flip lands in the real store below.
        // Replicated commits (buddies nonempty) never reach this: a
        // unanimous vote proved them clean, and the base fallback is
        // corruption-exempt.
        let mut escaped_delta = None;
        if let (Some(sdc), Some(fr)) = (&shared.sdc, &shared.faults) {
            if self.replica_buddies(&shared, task, shared.local(ctx.node())).is_empty() {
                if let Some(delta) = fr.plan.corrupt_task_output(ctx.node(), sdc_nonce(task, 0)) {
                    sdc.stats.borrow_mut().escaped += 1;
                    escaped_delta = Some(delta);
                }
            }
        }
        if shared.config.mode == ExecutionMode::Validate {
            self.run_body(task);
            if let Some(delta) = escaped_delta {
                self.corrupt_task_store(task, delta);
            }
        }
        // Record timing.
        {
            let inst = &shared.expanded.tasks[task as usize];
            let mut timing = shared.timing.borrow_mut();
            let t = ctx.arrival();
            if (inst.op as usize) < shared.program.timed_from {
                timing.setup_done = timing.setup_done.max(t);
            }
            timing.last_done = timing.last_done.max(t);
            timing.tasks_done += 1;
        }
        // Group credits by consumer owner: 1 credit per dependence edge,
        // plus 1 per incoming copy from this producer.
        let mut per_node: HashMap<NodeId, (Vec<(TaskRef, u32)>, u64)> = HashMap::new();
        for &succ in &shared.expanded.succs[task as usize] {
            let owner = shared.expanded.tasks[succ as usize].owner;
            let copies: Vec<_> = shared.expanded.copies[succ as usize]
                .iter()
                .filter(|c| c.from == task)
                .collect();
            let credits = 1 + copies.len() as u32;
            let bytes: u64 = shared.config.cost.notify_message_bytes
                + copies.iter().map(|c| c.bytes).sum::<u64>();
            let entry = per_node.entry(owner).or_default();
            entry.0.push((succ, credits));
            entry.1 += bytes;
        }
        let mut targets: Vec<_> = per_node.into_iter().collect();
        targets.sort_unstable_by_key(|(n, _)| *n);
        for (node, (items, bytes)) in targets {
            if shared.abs(node) == ctx.node() {
                for (succ, credits) in items {
                    self.pay(ctx, task, succ, credits, false);
                }
            } else {
                ctx.send_data(
                    shared.abs(node),
                    |corrupt| Msg::Credits { from: task, items, corrupt },
                    bytes,
                );
            }
        }
        // Recovery: report the completion to the session coordinator's
        // journal (its base node) over the reliable control channel.
        if let Some(fr) = &shared.faults {
            let prev = ctx.stage();
            ctx.set_stage(Stage::Recovery);
            if ctx.node() == shared.base {
                fr.journal.borrow_mut()[task as usize] = true;
            } else {
                ctx.send_control(
                    shared.base,
                    Msg::Complete { task },
                    shared.config.cost.notify_message_bytes,
                );
            }
            ctx.set_stage(prev);
        }
        // Centralized mode: completion processing flows through node 0's
        // runtime instance — per task when the op was expanded, per
        // slice when it traveled as a compact index launch.
        if !shared.config.dcr {
            let op = shared.expanded.tasks[task as usize].op;
            let compact = distribution_is_compact(&shared.config, &shared.expanded.safety[op as usize]);
            // Slice-granularity accounting only makes sense on the node
            // the slice statically belongs to; a task recovered onto a
            // different node reports per-task instead (the static owner's
            // count then never reaches zero — it crashed).
            let at_static_owner =
                ctx.node() == shared.abs(shared.expanded.tasks[task as usize].owner);
            let notify = if compact && !at_static_owner {
                true
            } else if compact {
                // A task of a compact op only ever completes on a node
                // that owns a non-empty group of its tasks; a missed
                // lookup or a decrement past zero is executor-state
                // corruption, so both fail loudly (release included)
                // instead of wrapping — covered by the
                // credit-conservation audit.
                let node = shared.local(ctx.node());
                let remaining = self.slice_remaining.entry(op).or_insert_with(|| {
                    let groups = &shared.expanded.dist[op as usize].groups;
                    let i = groups
                        .binary_search_by_key(&node, |(n, _)| *n)
                        .unwrap_or_else(|_| {
                            panic!("op {op} task completed on node {node}, which owns none of its tasks")
                        });
                    groups[i].1.len() as u32
                });
                *remaining = remaining.checked_sub(1).unwrap_or_else(|| {
                    panic!("slice accounting underflow: op {op} over-completed on node {node}")
                });
                *remaining == 0
            } else {
                true
            };
            if notify {
                ctx.send(
                    shared.base,
                    Msg::CentralNotify { count: 1 },
                    shared.config.cost.notify_message_bytes,
                );
            }
        }
    }

    /// Pay `credits` from producer `from` to consumer `task`. Under faults
    /// the `(from, task)` edge is paid at most once — a credit message for
    /// an edge a retry's journal snapshot already settled arrives late,
    /// and a duplicated delivery of an already paid edge is discarded.
    /// `via_journal` marks a settlement from the coordinator's journal:
    /// excluded from the credit-conservation audit (which tracks
    /// delivered credit messages — a re-sharded consumer's edge can be
    /// legitimately paid by message on the dead node and by journal on
    /// the survivor) and remembered so the producer's still-in-flight
    /// credits count as late rather than duplicated when they land.
    fn pay(
        &mut self,
        ctx: &mut NodeCtx<'_, Msg>,
        from: TaskRef,
        task: TaskRef,
        credits: u32,
        via_journal: bool,
    ) {
        let shared = self.sh();
        if let Some(fr) = &shared.faults {
            if !self.paid.insert((from, task)) {
                if self.journal_settled.remove(&(from, task)) {
                    fr.stats.borrow_mut().late_credits += credits as u64;
                } else {
                    fr.stats.borrow_mut().duplicate_credits += 1;
                }
                return;
            }
            if via_journal {
                self.journal_settled.insert((from, task));
            }
        }
        if !via_journal {
            if let Some(audit) = &shared.audit {
                audit.borrow_mut().credits_paid[task as usize] += credits as u64;
            }
        }
        self.apply_credits(ctx, task, credits);
    }

    fn apply_credits(&mut self, ctx: &mut NodeCtx<'_, Msg>, task: TaskRef, credits: u32) {
        let shared = self.sh();
        let st = self.state(task);
        let waits = st.waits;
        if let Some(fr) = &shared.faults {
            // Per-edge dedup bounds the total paid by the initial wait
            // count, so this saturation is unreachable — kept as a
            // defensive bound (an underflow would stall, not corrupt).
            if credits > waits {
                fr.stats.borrow_mut().late_credits += (credits - waits) as u64;
            }
            self.state(task).waits = waits.saturating_sub(credits);
        } else {
            st.waits = waits.checked_sub(credits).unwrap_or_else(|| {
                panic!("credit underflow for task {task}: {credits} credits paid against {waits} waits")
            });
        }
        self.try_start(ctx, task);
    }

    /// A credit message whose payload the fault plan flipped in transit.
    /// Defense on: the receiver-side checksum catches it — count it,
    /// charge the verification, and schedule a clean retransmission one
    /// acknowledgement timeout later (returns true: the corrupt delivery
    /// pays nothing). Defense off: the flipped payload is accepted
    /// (returns false) — counted, and in validation mode the
    /// consumer-side copy of the data takes a real bit flip when it
    /// materializes.
    fn handle_corrupt_payload(
        &mut self,
        ctx: &mut NodeCtx<'_, Msg>,
        from: TaskRef,
        items: &[(TaskRef, u32)],
    ) -> bool {
        let shared = self.sh();
        let Some(sdc) = &shared.sdc else { return false };
        if sdc.defense_on {
            sdc.stats.borrow_mut().payload_detected += 1;
            let prev = ctx.stage();
            ctx.set_stage(Stage::Verify);
            ctx.charge(shared.config.cost.verify_digest);
            ctx.set_stage(prev);
            let delay = shared.faults.as_ref().map_or(SimTime::ZERO, |fr| fr.cfg.ack_timeout);
            ctx.send_self_at(
                ctx.now() + delay,
                Msg::Credits { from, items: items.to_vec(), corrupt: false },
            );
            true
        } else {
            sdc.stats.borrow_mut().payload_escaped += 1;
            sdc.corrupt_edges
                .borrow_mut()
                .extend(items.iter().map(|&(t, _)| (from, t)));
            false
        }
    }

    /// Validation mode: land an escaped output corruption in the real
    /// store — flip bits of one element of the task's first written
    /// *data* field, so a defense-off run's final store provably
    /// diverges from the fault-free one. Only floating-point fields are
    /// targeted: integer fields double as topology pointers in the
    /// golden apps (wire endpoints, cell neighbors), and a flipped
    /// pointer crashes the validation interpreter instead of modeling a
    /// silent wrong answer.
    fn corrupt_task_store(&mut self, task: TaskRef, delta: u64) {
        let shared = self.sh();
        let inst = &shared.expanded.tasks[task as usize];
        let launch = shared.program.ops[inst.op as usize].launch();
        let mut store = shared.store.borrow_mut();
        for (req_idx, req) in launch.reqs.iter().enumerate() {
            if matches!(req.privilege, Privilege::Read) {
                continue;
            }
            let space = inst.subspaces[req_idx];
            let Some(instance) = store.get_mut((req.tree, space)) else { continue };
            let candidates: Vec<FieldId> = if req.fields.is_empty() {
                instance.field_ids().collect()
            } else {
                req.fields.clone()
            };
            if let Some(f) = float_field(instance, &candidates) {
                instance.corrupt_element(f, delta);
                return;
            }
        }
    }

    /// Validation mode: apply incoming copies, fill reduction buffers,
    /// run the kernel.
    fn run_body(&mut self, task: TaskRef) {
        let shared = self.sh();
        let forest = &shared.program.forest;
        let inst = &shared.expanded.tasks[task as usize];
        let op = inst.op as usize;
        let launch = shared.program.ops[op].launch();
        let mut store = shared.store.borrow_mut();

        // Ensure destination instances exist.
        for (req, &space) in launch.reqs.iter().zip(&inst.subspaces) {
            store.ensure(forest, req.tree, space, req.field_space);
        }

        // Apply incoming copies: plain copies first, then reduction folds,
        // in deterministic producer order.
        let mut copies = shared.expanded.copies[task as usize].clone();
        copies.sort_by_key(|c| (c.fold.is_some(), c.from, c.src_space, c.dst_req));
        for c in &copies {
            let dst_space = inst.subspaces[c.dst_req];
            if dst_space == c.src_space {
                continue; // same instance: data already in place
            }
            let dst_domain = forest.domain(dst_space).clone();
            let src_domain = forest.domain(c.src_space).clone();
            let Some(overlap) = domain_intersection(&dst_domain, &src_domain) else {
                continue;
            };
            let src = store
                .take((c.tree, c.src_space))
                .unwrap_or_else(|| panic!("copy source instance missing: {:?}", c.src_space));
            {
                let dst = store
                    .get_mut((c.tree, dst_space))
                    .expect("destination ensured above");
                match c.fold {
                    None => dst.copy_from(&src, &overlap, &c.fields),
                    Some(op_id) => {
                        let kind = op_id.kind().expect("built-in reduction");
                        dst.fold_from(&src, &overlap, &c.fields, kind);
                    }
                }
                // An escaped payload corruption (defense off) flips bits
                // of the copied data as the consumer materializes it.
                let edge_corrupt = shared
                    .sdc
                    .as_ref()
                    .is_some_and(|s| s.corrupt_edges.borrow().contains(&(c.from, task)));
                if edge_corrupt {
                    if let Some(f) = float_field(dst, &c.fields) {
                        dst.corrupt_element(f, payload_delta(c.from, task));
                    }
                }
            }
            store.put((c.tree, c.src_space), src);
        }

        // Reduction privileges write contributions into identity-filled
        // buffers (folded into consumers later). Each (buffer, field,
        // epoch) is filled exactly once, by whichever epoch member
        // executes first — members carry the epoch ids the dependence
        // oracle assigned and are otherwise unordered (commutativity).
        for (req_idx, req) in launch.reqs.iter().enumerate() {
            if let Privilege::Reduce(op_id) = req.privilege {
                let kind = op_id.kind().expect("built-in reduction");
                let space = inst.subspaces[req_idx];
                let instance = store.get_mut((req.tree, space)).expect("ensured");
                let mut filled = shared.reduce_filled.borrow_mut();
                for &(f, epoch) in &inst.reduce_fill[req_idx] {
                    if filled.insert((req.tree, space, f, epoch)) {
                        instance.fill_identity(f, kind);
                    }
                }
            }
        }

        if let Some(body) = &shared.program.task(launch.task).body {
            let keys: Vec<_> = launch
                .reqs
                .iter()
                .zip(&inst.subspaces)
                .map(|(req, &space)| ((req.tree, space), forest.domain(space).clone()))
                .collect();
            let mut ctx = TaskContext::assemble(inst.point, launch.scalars.clone(), keys, &mut store);
            body(&mut ctx);
            ctx.disassemble(&mut store);
        }
    }
}

impl<'p> NodeBehavior<Msg> for RtNode<'p> {
    fn on_message(&mut self, ctx: &mut NodeCtx<'_, Msg>, msg: Msg) {
        if self.shared.is_none() {
            // Unbound between service sessions: slots are only rebound
            // after the previous session's lane drained, so nothing
            // should ever land here — discard defensively if it does.
            return;
        }
        match msg {
            Msg::InjectOp { op } => {
                ctx.set_stage(Stage::Distribution);
                let shared = self.sh();
                let groups = &shared.expanded.dist[op as usize].groups;
                let local = shared.local(ctx.node());
                if let Ok(i) = groups.binary_search_by_key(&local, |(n, _)| *n) {
                    let tasks = groups[i].1.clone();
                    for t in tasks {
                        self.inject_task(ctx, t);
                    }
                }
            }
            Msg::DistributeOp { op } => {
                ctx.set_stage(Stage::Distribution);
                let shared = self.sh();
                let compact = distribution_is_compact(&shared.config, &shared.expanded.safety[op as usize]);
                if compact {
                    let n = shared.expanded.dist[op as usize].slices.len() as u32;
                    self.handle_slice_batch(ctx, op, 0, n);
                } else {
                    // Stream one message per task out of the base node.
                    let (lo, hi) = shared.expanded.op_tasks[op as usize];
                    for t in lo..hi {
                        let owner = shared.abs(shared.expanded.tasks[t as usize].owner);
                        if owner == ctx.node() {
                            self.inject_task(ctx, t);
                        } else {
                            ctx.send(
                                owner,
                                Msg::TaskArrive { task: t },
                                shared.config.cost.task_message_bytes,
                            );
                        }
                    }
                }
            }
            Msg::SliceBatch { op, lo, hi } => {
                ctx.set_stage(Stage::Distribution);
                self.handle_slice_batch(ctx, op, lo, hi);
            }
            Msg::TaskArrive { task } => {
                ctx.set_stage(Stage::Distribution);
                self.inject_task(ctx, task);
            }
            Msg::Credits { from, items, corrupt } => {
                ctx.set_stage(Stage::Network);
                if corrupt && self.handle_corrupt_payload(ctx, from, &items) {
                    return;
                }
                for (task, credits) in items {
                    self.pay(ctx, from, task, credits, false);
                }
            }
            Msg::TaskDone { task } => {
                ctx.set_stage(Stage::Network);
                self.complete_task(ctx, task);
            }
            Msg::CentralNotify { count } => {
                ctx.set_stage(Stage::Network);
                let per_unit = self.sh().config.cost.central_complete;
                ctx.charge(per_unit * count as u64);
            }
            Msg::Complete { task } => {
                ctx.set_stage(Stage::Recovery);
                let shared = self.sh();
                if let Some(fr) = &shared.faults {
                    fr.journal.borrow_mut()[task as usize] = true;
                }
            }
            Msg::RecoveryCheck { op, attempt } => {
                self.recovery_check(ctx, op, attempt);
            }
            Msg::Retry { op, items } => {
                self.handle_retry(ctx, op, items);
            }
            Msg::ReplicaExec { task, attempt, owner, fallback } => {
                ctx.set_stage(Stage::Verify);
                self.handle_replica_exec(ctx, task, attempt, owner, fallback);
            }
            Msg::ReplicaDone { task, attempt, owner, fallback } => {
                ctx.set_stage(Stage::Verify);
                let shared = self.sh();
                ctx.charge(shared.config.cost.verify_digest);
                if fallback {
                    // The base's fallback execution is honest by
                    // construction: commit without a vote.
                    self.complete_task(ctx, task);
                } else if ctx.node() == owner {
                    let digest = self.output_digest(&shared, task, attempt, ctx.node());
                    self.record_vote(ctx, task, attempt, digest);
                } else {
                    let digest = self.output_digest(&shared, task, attempt, ctx.node());
                    ctx.send_control(
                        owner,
                        Msg::ReplicaDigest { task, attempt, digest },
                        shared.config.cost.digest_message_bytes,
                    );
                }
            }
            Msg::ReplicaDigest { task, attempt, digest } => {
                ctx.set_stage(Stage::Verify);
                ctx.charge(self.sh().config.cost.verify_vote);
                self.record_vote(ctx, task, attempt, digest);
            }
        }
    }
}

impl<'p> RtNode<'p> {
    /// Node-0 coordinator: probe the completion journal for `op`. Fully
    /// journaled ops let their timer die; otherwise every unacknowledged
    /// task is re-issued to its responsible node with a journal-snapshot
    /// wait count, groups on confirmed-dead nodes are re-sharded onto a
    /// survivor once `attempt` exhausts the retry budget, and the timer
    /// re-arms with exponential backoff.
    fn recovery_check(&mut self, ctx: &mut NodeCtx<'_, Msg>, op: u32, attempt: u32) {
        let shared = self.sh();
        let Some(fr) = &shared.faults else { return };
        ctx.set_stage(Stage::Recovery);
        let check_start = ctx.now();
        ctx.charge(shared.config.cost.recovery_check);
        fr.stats.borrow_mut().recovery_checks += 1;
        let (lo, hi) = shared.expanded.op_tasks[op as usize];
        let mut by_node: HashMap<NodeId, Vec<(TaskRef, Vec<TaskRef>)>> = HashMap::new();
        {
            let journal = fr.journal.borrow();
            let mut reassigned = fr.reassigned.borrow_mut();
            let now = ctx.now();
            for t in lo..hi {
                if journal[t as usize] {
                    continue;
                }
                let static_owner = shared.expanded.tasks[t as usize].owner;
                let mut dest =
                    reassigned.get(&(op, static_owner)).copied().unwrap_or(static_owner);
                if attempt >= fr.cfg.max_retries && fr.plan.is_crashed(shared.abs(dest), now) {
                    // Retry budget exhausted and the assignee is confirmed
                    // dead (modeled perfect failure detector: the plan's
                    // crash is in the past): re-shard the group onto the
                    // next survivor in rotation (within this session's
                    // node range) and charge the safety re-analysis the
                    // re-mapped launch requires.
                    let survivor =
                        next_survivor(dest, shared.config.nodes, shared.base, &fr.plan);
                    reassigned.insert((op, static_owner), survivor);
                    dest = survivor;
                    let mut stats = fr.stats.borrow_mut();
                    stats.resharded_groups += 1;
                    stats.reanalyses += 1;
                    drop(stats);
                    // A re-shard rewrites a sharding decision a captured
                    // trace may have baked in: if the op was materialized
                    // by replay, count the trace as invalidated (the
                    // paper-side contract for composing tracing with
                    // recovery).
                    if shared.expanded.replayed_ops[op as usize] {
                        shared.trace_stats.borrow_mut().invalidated += 1;
                    }
                    let mut reanalysis = shared.config.cost.logical_launch;
                    if let OpSafety::Dynamic { evals } = &shared.expanded.safety[op as usize] {
                        reanalysis += shared.config.cost.dyn_check_per_eval * *evals;
                    }
                    ctx.charge(reanalysis);
                }
                // Journal-snapshot settlement: the producers the journal
                // shows completed. The receiver settles each such edge
                // through the credit dedup, so a settled producer's
                // still-in-flight credit message is discarded rather
                // than double-counted — a wait-count clamp here once
                // raced exactly that way, letting a consumer start (and
                // commit) before an unjournaled producer. Monotone in
                // the journal, so retry rounds eventually settle every
                // edge. Copy producers are a subset of `deps` (every
                // copy rides a dependence edge), so deps alone cover it.
                let settled: Vec<TaskRef> = shared.expanded.deps[t as usize]
                    .iter()
                    .copied()
                    .filter(|&p| journal[p as usize])
                    .collect();
                by_node.entry(dest).or_default().push((t, settled));
            }
        }
        let fully_journaled = by_node.is_empty();
        let mut targets: Vec<_> = by_node.into_iter().collect();
        targets.sort_unstable_by_key(|(n, _)| *n);
        for (node, items) in targets {
            fr.stats.borrow_mut().retried_tasks += items.len() as u64;
            let bytes = items.len() as u64 * shared.config.cost.task_message_bytes;
            if shared.abs(node) == ctx.node() {
                self.handle_retry(ctx, op, items);
            } else {
                ctx.send_control(shared.abs(node), Msg::Retry { op, items }, bytes);
            }
        }
        shared.record(TraceEvent {
            op,
            task: None,
            node: ctx.node(),
            stage: Stage::Recovery,
            start: check_start,
            duration: ctx.now() - check_start,
        });
        if !fully_journaled {
            let backoff = fr.cfg.ack_timeout * (1u64 << attempt.min(6));
            ctx.send_self_at(ctx.now() + backoff, Msg::RecoveryCheck { op, attempt: attempt + 1 });
        }
    }

    /// Re-issue retried tasks locally: inject if the launch message was
    /// lost, then settle the edges from producers the coordinator's
    /// journal shows completed. Settlement flows through the per-edge
    /// credit dedup (`paid`), so an edge is only ever paid once whether
    /// its credits arrive by message or by journal — and a task never
    /// starts before every producer committed.
    fn handle_retry(
        &mut self,
        ctx: &mut NodeCtx<'_, Msg>,
        op: u32,
        items: Vec<(TaskRef, Vec<TaskRef>)>,
    ) {
        let retry_start = ctx.now();
        ctx.set_stage(Stage::Recovery);
        let shared = self.sh();
        for (task, settled) in items {
            let st = *self.state(task);
            if st.started {
                continue;
            }
            if !st.injected {
                self.inject_task(ctx, task);
            }
            for from in settled {
                if self.state(task).started || self.paid.contains(&(from, task)) {
                    continue;
                }
                // Mirror the credit fan-out in `complete_task`: one
                // credit per dependence edge plus one per copy it feeds.
                let credits = 1 + shared.expanded.copies[task as usize]
                    .iter()
                    .filter(|c| c.from == from)
                    .count() as u32;
                self.pay(ctx, from, task, credits, true);
            }
        }
        self.sh().record(TraceEvent {
            op,
            task: None,
            node: ctx.node(),
            stage: Stage::Recovery,
            start: retry_start,
            duration: ctx.now() - retry_start,
        });
    }

    /// Recursive-halving scatter of slice descriptors (§5, Figure 3): the
    /// sender keeps the first half and forwards the second half to the
    /// owner of its first slice, until single slices expand locally.
    fn handle_slice_batch(&mut self, ctx: &mut NodeCtx<'_, Msg>, op: u32, lo: u32, mut hi: u32) {
        let shared = self.sh();
        let slices = &shared.expanded.dist[op as usize].slices;
        loop {
            if lo >= hi {
                return;
            }
            if hi - lo == 1 {
                let (tlo, thi, owner) = slices[lo as usize];
                let owner = shared.abs(owner);
                if owner == ctx.node() {
                    // The slice has reached its owner and expands into
                    // point tasks: this is the delivery the coverage
                    // audit counts (exactly once per slice).
                    if let Some(audit) = &shared.audit {
                        audit.borrow_mut().slice_delivered[op as usize][lo as usize] += 1;
                    }
                    for t in tlo..thi {
                        self.inject_task(ctx, t);
                    }
                } else {
                    ctx.send(
                        owner,
                        Msg::SliceBatch { op, lo, hi },
                        shared.config.cost.slice_message_bytes,
                    );
                }
                return;
            }
            let mid = lo + (hi - lo) / 2;
            let right_owner = shared.abs(slices[mid as usize].2);
            let bytes = (hi - mid) as u64 * shared.config.cost.slice_message_bytes;
            if right_owner == ctx.node() {
                // Keep both halves local: handle right recursively.
                self.handle_slice_batch(ctx, op, mid, hi);
            } else {
                ctx.send(right_owner, Msg::SliceBatch { op, lo: mid, hi }, bytes);
            }
            hi = mid;
        }
    }
}

/// The session-local node a dead assignee's work moves to: the next node
/// in rotation *within the session's range* that never crashes in the
/// machine's fault plan. The session's base node is crash-exempt by
/// construction (node 0 on the legacy path, exempted slot bases in
/// service mode), so the rotation always terminates — and spreading by
/// rotation (rather than dumping everything on the base) keeps recovered
/// work balanced when several groups die.
fn next_survivor(dead: NodeId, nodes: usize, base: NodeId, plan: &FaultPlan) -> NodeId {
    for step in 1..nodes {
        let candidate = (dead + step) % nodes;
        if !plan.ever_crashes(base + candidate) {
            return candidate;
        }
    }
    0
}

/// SplitMix64 finalizer (the same mixer the fault schedule uses): the
/// modeled digest and payload-delta domains live in the executor,
/// independent of the plan's draw salts.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Per-(task, vote round) nonce for output-corruption draws: a re-run of
/// a quarantined task draws fresh corruption, so a corrupt replica does
/// not deterministically re-corrupt every round — which is what makes
/// the bounded re-run loop converge at any rate below certainty.
fn sdc_nonce(task: TaskRef, attempt: u32) -> u64 {
    ((attempt as u64) << 40) | task as u64
}

/// Nonzero bit-flip delta for an accepted corrupt payload on the
/// `(producer, consumer)` edge — deterministic, so validation-mode store
/// divergence replays exactly.
fn payload_delta(from: TaskRef, to: TaskRef) -> u64 {
    mix64(((from as u64) << 32) ^ (to as u64) ^ 0xFA1C) | 1
}

/// First floating-point field among `candidates` that `instance` holds —
/// the only fields validation-mode bit flips may land in (integer fields
/// double as topology pointers the interpreter dereferences).
fn float_field(instance: &PhysicalInstance, candidates: &[FieldId]) -> Option<FieldId> {
    candidates
        .iter()
        .copied()
        .find(|&f| {
            instance.has_field(f)
                && matches!(instance.store(f).kind(), FieldKind::F64 | FieldKind::F32)
        })
}

/// Whether this op travels as a compact slice descriptor without DCR.
fn distribution_is_compact(config: &RuntimeConfig, safety: &OpSafety) -> bool {
    config.idx && !matches!(safety, OpSafety::Sequential) && !config.tracing
}

/// Whether this op is carried as a compact index launch through issuance
/// and logical analysis.
fn issuance_is_compact(config: &RuntimeConfig, safety: &OpSafety) -> bool {
    config.idx && !matches!(safety, OpSafety::Sequential)
}

/// The analytically computed issuance/logical-analysis timeline:
/// per-op frontier plus its per-stage decomposition and (when tracing)
/// the corresponding structured events.
struct IssuanceTimeline {
    /// Time each op clears logical analysis.
    frontier: Vec<SimTime>,
    /// Total time spent in dynamic safety checks.
    dyn_total: SimTime,
    /// Per-stage decomposition of the timeline (issuance, logical,
    /// dynamic checks, and the distribution work the tracing-without-DCR
    /// expansion forces onto the issuing node).
    stage: StageTotals,
    /// One event per contiguous stage segment (only when `config.trace`).
    events: Vec<TraceEvent>,
}

impl IssuanceTimeline {
    /// Advance the timeline cursor `t` by `dur` attributed to `stage`,
    /// recording a trace event for the segment when requested.
    fn segment(&mut self, t: &mut SimTime, trace: bool, op: u32, stage: Stage, dur: SimTime) {
        if dur == SimTime::ZERO {
            return;
        }
        self.stage.add(stage, dur);
        if trace {
            self.events.push(TraceEvent {
                op,
                task: None,
                node: 0,
                stage,
                start: *t,
                duration: dur,
            });
        }
        *t += dur;
    }
}

/// Compute the issuance + logical-analysis frontier (identical on every
/// node under DCR; node 0's otherwise), decomposed by stage.
fn compute_frontier(
    program: &Program,
    expanded: &ExpandedProgram,
    config: &RuntimeConfig,
) -> IssuanceTimeline {
    let cost = &config.cost;
    let mut t = SimTime::ZERO;
    let mut seen: HashSet<u64> = HashSet::new();
    let mut tl = IssuanceTimeline {
        frontier: Vec::with_capacity(program.ops.len()),
        dyn_total: SimTime::ZERO,
        stage: StageTotals::new(),
        events: Vec::new(),
    };
    for (i, op) in program.ops.iter().enumerate() {
        let launch = op.launch();
        let d = launch.domain.volume();
        let safety = &expanded.safety[i];
        let opi = i as u32;
        if config.dynamic_checks {
            if let OpSafety::Dynamic { evals } = safety {
                let check = cost.dyn_check_per_eval * *evals;
                tl.dyn_total += check;
                tl.segment(&mut t, config.trace, opi, Stage::DynamicChecks, check);
            }
        }
        let sig = op_signature(program, op);
        let traced = config.tracing && !seen.insert(sig);
        let per_task = if traced {
            cost.trace_replay_per_task
        } else {
            cost.logical_task
        };
        // Per-task charges for a traced repeat are replay work, not fresh
        // logical analysis — attribute them to their own stage.
        let logical_stage = if traced { Stage::TraceReplay } else { Stage::Logical };
        if issuance_is_compact(config, safety) {
            if config.dcr || !config.tracing {
                // Compact through issuance, logical analysis, and (under
                // DCR) distribution: O(1) per launch.
                tl.segment(&mut t, config.trace, opi, Stage::Issuance, cost.issue_launch);
                tl.segment(&mut t, config.trace, opi, Stage::Logical, cost.logical_launch);
            } else {
                // Tracing without DCR: the trace captures/replays
                // individual tasks, forcing expansion before distribution
                // (§6.2.1) — O(|D|) on node 0 despite the index launch.
                tl.segment(
                    &mut t,
                    config.trace,
                    opi,
                    Stage::Issuance,
                    cost.issue_launch + cost.issue_task * d,
                );
                tl.segment(
                    &mut t,
                    config.trace,
                    opi,
                    Stage::Distribution,
                    cost.distribute_point * d,
                );
                tl.segment(&mut t, config.trace, opi, logical_stage, per_task * d);
            }
        } else {
            tl.segment(&mut t, config.trace, opi, Stage::Issuance, cost.issue_task * d);
            tl.segment(&mut t, config.trace, opi, logical_stage, per_task * d);
        }
        tl.frontier.push(t);
    }
    tl
}

/// Signature keying Legion-style trace capture/replay: two launches may
/// replay the same trace only if their full analysis-relevant shape
/// matches. Delegates to [`launch_signature`], which hashes the complete
/// domain (bounds, dimensionality, sparse points — not just volume) and
/// every requirement's privilege, reduction op, and field list, so
/// same-volume launches with different shapes never collide.
fn op_signature(program: &Program, op: &crate::program::Operation) -> u64 {
    launch_signature(op.launch(), program)
}

/// Assemble the per-session shared state: frontier, wait counts,
/// physical-analysis weights, trace pre-seed, audit counters. `base`/`t0`
/// place the session on the machine (`0`/`ZERO` on the legacy path —
/// every derived quantity is then byte-identical to the pre-service
/// executor). `faults` is the session's recovery runtime, built by the
/// caller because the fault *plan* differs between the paths: the legacy
/// path generates a plan over its own machine, the service hands every
/// session the machine-global plan.
pub(crate) fn build_shared<'p>(
    program: &'p Program,
    config: &RuntimeConfig,
    base: NodeId,
    t0: SimTime,
    expanded: ExpandedProgram,
    faults: Option<FaultRuntime>,
) -> Rc<Shared<'p>> {
    let issuance = compute_frontier(program, &expanded, config);

    let waits_init: Vec<u32> = (0..expanded.len())
        .map(|t| (expanded.deps[t].len() + expanded.copies[t].len()) as u32)
        .collect();

    let phys_weight: Vec<u32> = program
        .ops
        .iter()
        .map(|op| {
            op.launch()
                .reqs
                .iter()
                .map(|r| {
                    // ceil(log2 |P|): a 4-way partition costs 2 BVH
                    // levels, not 3 (floor(log2)+1 overcharged every
                    // power-of-two partition by one level).
                    let children = program.forest.partition(r.partition).children.len() as u32;
                    children.max(2).next_power_of_two().trailing_zeros()
                })
                .sum()
        })
        .collect();

    // Which ops travel as compact slice descriptors (the scatter tree
    // the coverage audit watches): only meaningful without DCR.
    let compact_ops: Vec<bool> = expanded
        .safety
        .iter()
        .map(|s| !config.dcr && distribution_is_compact(config, s))
        .collect();

    let machine = MachineDesc::piz_daint(config.nodes);
    let trace = if config.trace {
        let mut log = TraceLog::new();
        for &e in &issuance.events {
            log.record(e);
        }
        // Zero-duration markers for every capture/replay/invalidate
        // event, pinned at the moment the window's first op cleared the
        // issuance timeline. Recorded directly (not through
        // `Shared::record`, which elides zero-duration events): the
        // markers carry no simulated time by design — replay must stay
        // invisible to the clock — but should still be visible in the
        // structured log and Chrome timeline.
        for m in &expanded.trace_marks {
            log.record(TraceEvent {
                op: m.op,
                task: None,
                node: 0,
                stage: Stage::TraceReplay,
                start: issuance.frontier[m.op as usize],
                duration: SimTime::ZERO,
            });
        }
        Some(RefCell::new(log))
    } else {
        None
    };
    let audit = if config.audit {
        let slices_per_op: Vec<usize> = expanded
            .dist
            .iter()
            .zip(&compact_ops)
            .map(|(d, &c)| if c { d.slices.len() } else { 0 })
            .collect();
        Some(RefCell::new(AuditData::sized(expanded.len(), &slices_per_op)))
    } else {
        None
    };
    let trace_stats = RefCell::new(expanded.trace_replay);
    // The SDC runtime exists when there is anything for it to observe:
    // scheduled corruption (even undefended — the escape counters are the
    // negative control's evidence) or an active replication policy.
    // Otherwise `None`, keeping every defense code path inert.
    let defense_on = config.replication.as_ref().is_some_and(|r| r.is_active());
    let corrupts = config.faults.as_ref().is_some_and(|f| f.corrupts());
    let sdc = if defense_on || corrupts {
        Some(SdcRuntime {
            policy: config
                .replication
                .as_ref()
                .map_or(Box::new(NoReplication) as Box<dyn ReplicationPolicy>, |r| r.policy()),
            defense_on,
            stats: RefCell::new(SdcStats::default()),
            corrupt_edges: RefCell::new(HashSet::new()),
        })
    } else {
        None
    };
    Rc::new(Shared {
        program,
        expanded,
        config: config.clone(),
        machine,
        base,
        t0,
        frontier: issuance.frontier,
        issuance_stage: issuance.stage,
        waits_init,
        phys_weight,
        compact_ops,
        store: RefCell::new(InstanceStore::new()),
        reduce_filled: RefCell::new(HashSet::new()),
        timing: RefCell::new(Timing {
            setup_done: SimTime::ZERO,
            last_done: SimTime::ZERO,
            tasks_done: 0,
        }),
        dynamic_check_time: issuance.dyn_total,
        trace,
        audit,
        faults,
        sdc,
        trace_stats,
    })
}

/// Inject a session's ops (and, under faults, its acknowledgement
/// timers) into the simulator: every op at `t0 + frontier[op]`, targeted
/// at the session's node range. The enqueue order is identical to the
/// pre-service executor, which is what keeps sequence-number assignment —
/// and therefore the whole dispatch schedule — byte-identical at
/// `base = 0`, `t0 = ZERO`.
pub(crate) fn inject_session<'p>(
    sim: &mut Simulator<Msg, RtNode<'p>>,
    shared: &Shared<'p>,
    t0: SimTime,
) {
    for op_idx in 0..shared.program.ops.len() {
        let at = t0 + shared.frontier[op_idx];
        if shared.config.dcr {
            for (node, _) in &shared.expanded.dist[op_idx].groups {
                sim.inject(at, shared.abs(*node), Msg::InjectOp { op: op_idx as u32 });
            }
        } else {
            sim.inject(at, shared.base, Msg::DistributeOp { op: op_idx as u32 });
        }
        // Arm the coordinator's acknowledgement timer for every op: the
        // first probe fires one timeout after the op cleared issuance.
        if let Some(fr) = &shared.faults {
            sim.inject(
                at + fr.cfg.ack_timeout,
                shared.base,
                Msg::RecoveryCheck { op: op_idx as u32, attempt: 0 },
            );
        }
    }
}

/// Runaway-guard budget of one session's protocol (the caller still takes
/// the max with the machine-sized floor).
pub(crate) fn event_budget(total_tasks: u64, ops: usize, nodes: usize, faulted: bool) -> u64 {
    let mut max_events = 64 * total_tasks.max(1_000) + 64 * (ops as u64) * (nodes as u64);
    if faulted {
        // Retries, duplicated deliveries, and backoff probes inflate the
        // event count well past the fault-free bound.
        max_events = max_events.saturating_mul(16);
    }
    max_events
}

/// Simulator-side aggregates of one session, extracted before the shared
/// state is unwrapped: the whole machine's counters on the legacy path,
/// one lane's slice in service mode. All times are session-relative (the
/// caller subtracts `t0` where it applies).
pub(crate) struct SimAggregates {
    /// Latest busy instant of the session's nodes, crash-clamped,
    /// relative to the session's `t0`.
    pub(crate) makespan: SimTime,
    pub(crate) messages: u64,
    pub(crate) bytes: u64,
    pub(crate) traffic: StageTraffic,
    pub(crate) fault_counters: FaultCounters,
    /// Per-stage busy time of the session's nodes (issuance timeline not
    /// yet folded in).
    pub(crate) stage_busy: StageTotals,
    /// Sparse per-node stage rows, session-local node ids.
    pub(crate) node_stage_busy: Vec<(NodeId, StageTotals)>,
}

/// Assemble a [`RunReport`] from a finished session's shared state and
/// its simulator aggregates. Field-for-field the tail of the pre-service
/// `execute` — both paths now end here, which is what the n=1
/// transparency tier byte-compares.
pub(crate) fn finish_report(shared: Shared<'_>, agg: SimAggregates) -> RunReport {
    let t0 = shared.t0;
    let total_tasks = shared.expanded.len() as u64;
    let timing = shared.timing.into_inner();
    let setup_done = timing.setup_done.saturating_sub(t0);
    let store = if shared.config.mode == ExecutionMode::Validate {
        Some(shared.store.into_inner())
    } else {
        None
    };

    assert_eq!(
        timing.tasks_done, total_tasks,
        "deadlock or lost tasks: {} of {} completed",
        timing.tasks_done, total_tasks
    );

    let audit = shared.audit.map(|cell| {
        run_audits(
            &cell.into_inner(),
            &shared.waits_init,
            &shared.compact_ops,
            shared.faults.is_some(),
        )
    });

    // Fault schedule counts are scoped to the session's node range —
    // the whole machine on the legacy path.
    let lo = shared.base;
    let hi = shared.base + shared.config.nodes;
    let recovery = shared.faults.as_ref().map(|fr| {
        let mut r = fr.stats.borrow().clone();
        r.seed = fr.cfg.seed;
        r.crashes = fr
            .plan
            .crashes()
            .iter()
            .filter(|&&(n, _)| n >= lo && n < hi)
            .count() as u64;
        r.slow_nodes = fr
            .plan
            .slow_nodes()
            .iter()
            .filter(|&&(n, _)| n >= lo && n < hi)
            .count() as u64;
        r.dropped = agg.fault_counters.dropped;
        r.duplicated = agg.fault_counters.duplicated;
        r.crash_dropped = agg.fault_counters.crash_dropped;
        r
    });
    let sdc = shared.sdc.as_ref().map(|s| s.stats.borrow().clone());

    // Fold the issuance/logical/dynamic-check timeline in once: under
    // DCR it is replicated identically on every node, so multiplying it
    // by the node count would misstate the work the paper attributes to
    // the pipeline front end.
    let mut stage_busy = agg.stage_busy;
    stage_busy.merge(&shared.issuance_stage);

    RunReport {
        makespan: agg.makespan,
        setup_done,
        elapsed: agg.makespan.saturating_sub(setup_done),
        tasks: total_tasks,
        messages: agg.messages,
        bytes: agg.bytes,
        dynamic_check_time: shared.dynamic_check_time,
        issuance_span: shared.frontier.last().copied().unwrap_or(SimTime::ZERO),
        stage_busy,
        node_stage_busy: agg.node_stage_busy,
        stage_messages: agg.traffic.messages,
        stage_bytes: agg.traffic.bytes,
        trace: shared.trace.map(RefCell::into_inner),
        audit,
        store,
        analysis_cache: shared.expanded.analysis_cache,
        trace_replay: shared.trace_stats.into_inner(),
        recovery,
        sdc,
    }
}

/// Execute `program` under `config`, returning the run report.
pub fn execute(program: &Program, config: &RuntimeConfig) -> RunReport {
    let expanded = expand_program(program, config);
    let total_tasks = expanded.len() as u64;
    let faults = config.faults.as_ref().map(|fc| {
        FaultRuntime::new(
            fc.clone(),
            FaultPlan::generate(fc.seed, config.nodes, &fc.to_spec()),
            expanded.len(),
        )
    });
    let shared = build_shared(program, config, 0, SimTime::ZERO, expanded, faults);

    let behaviors: Vec<RtNode<'_>> = (0..config.nodes)
        .map(|_| {
            let mut node = RtNode::unbound();
            node.bind(shared.clone());
            node
        })
        .collect();
    let mut sim = Simulator::new(shared.machine.clone(), Network::aries(), behaviors);
    if let Some(spec) = &config.net_hierarchy {
        sim = sim.with_interconnect(Box::new(HierNetwork::new(Network::aries(), spec.clone())));
    }
    if let Some(fr) = &shared.faults {
        sim.set_fault_plan(fr.plan.clone());
    }

    inject_session(&mut sim, &shared, SimTime::ZERO);

    // Never cap below the machine-size-derived floor: a huge machine's
    // legitimate traffic must not trip the runaway guard.
    let max_events = event_budget(
        total_tasks,
        program.ops.len(),
        config.nodes,
        config.faults.is_some(),
    )
    .max(sim.default_event_cap());
    if let Err(err) = sim.try_run(max_events) {
        // The guard is structured data ([`il_machine::SimError`]); at this
        // boundary a trip still means a protocol bug, so escalate.
        panic!("{err}");
    }

    let stats = sim.stats().clone();
    let agg = SimAggregates {
        makespan: sim.makespan(),
        messages: stats.messages,
        bytes: stats.bytes,
        traffic: stats.traffic,
        fault_counters: stats.faults,
        // Simulator-side per-node stage busy time (distribution,
        // physical, exec, network); the analytic issuance timeline is
        // not per-node.
        stage_busy: sim.stage_totals(),
        node_stage_busy: sim.node_stage_busy(),
    };
    drop(sim);
    let shared = Rc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("simulator retained shared state"));
    finish_report(shared, agg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq};
    use il_geometry::Domain;
    use il_region::{equal_partition_1d, FieldId, FieldKind, FieldSpaceDesc};

    /// Regression: the tracing signature once hashed only the domain's
    /// *volume* and each requirement's partition + functor, so launches
    /// with equal volume but different privileges or field lists
    /// collided — and tracing replayed the wrong trace for them. The
    /// full launch shape must distinguish all of these.
    #[test]
    fn same_volume_launches_hash_differently() {
        let mut b = ProgramBuilder::new();
        let mut fs = FieldSpaceDesc::new();
        let f = fs.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fs);
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = equal_partition_1d(&mut b.forest, r.space, 4);
        let ident = b.identity_functor();
        let t = b.task_modeled("t");
        let mk = |privilege, fields: Vec<FieldId>| IndexLaunchDesc {
            task: t,
            domain: Domain::range(4),
            reqs: vec![RegionReq {
                partition: p,
                functor: ident,
                privilege,
                fields,
                tree: r.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::ZERO),
            shard: None,
        };
        b.index_launch(mk(Privilege::Read, vec![]));
        b.index_launch(mk(Privilege::ReadWrite, vec![]));
        b.index_launch(mk(Privilege::Read, vec![f]));
        b.index_launch(mk(Privilege::Read, vec![]));
        let program = b.build();
        let sigs: Vec<u64> = program
            .ops
            .iter()
            .map(|op| op_signature(&program, op))
            .collect();
        // All four ops share task, domain volume, partition, and functor
        // — the old hash collided on every pair.
        assert_ne!(sigs[0], sigs[1], "privilege must affect the signature");
        assert_ne!(sigs[0], sigs[2], "field list must affect the signature");
        assert_ne!(sigs[1], sigs[2]);
        // Genuinely identical launches still share one (that is what
        // makes tracing replay work at all).
        assert_eq!(sigs[0], sigs[3]);
    }

    /// Transparency of the trace-replay stats surface: `RunReport`
    /// carries `trace_replay` counters, but `stage_json()` — the
    /// byte-compared observable in the equivalence tiers — must not
    /// mention them, and must be identical with replay on and off even
    /// when a trace actually captures and replays.
    #[test]
    fn trace_replay_stats_stay_out_of_stage_json() {
        let mut b = ProgramBuilder::new();
        let mut fs = FieldSpaceDesc::new();
        let f = fs.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fs);
        let r = b.forest.create_region(Domain::range(8), fs);
        let p = equal_partition_1d(&mut b.forest, r.space, 4);
        let ident = b.identity_functor();
        let t = b.task_modeled("t");
        for _ in 0..6 {
            b.index_launch(IndexLaunchDesc {
                task: t,
                domain: Domain::range(4),
                reqs: vec![RegionReq {
                    partition: p,
                    functor: ident,
                    privilege: Privilege::ReadWrite,
                    fields: vec![f],
                    tree: r.tree,
                    field_space: fs,
                }],
                scalars: vec![],
                cost: CostSpec::Uniform(SimTime::us(10)),
                shard: None,
            });
        }
        let program = b.build();
        let cfg_on = RuntimeConfig::scale(2);
        let on = execute(&program, &cfg_on);
        let off = execute(&program, &cfg_on.clone().with_trace_replay(false));
        assert!(
            on.trace_replay.captured > 0 && on.trace_replay.replayed > 0,
            "identical launches must capture and replay: {:?}",
            on.trace_replay
        );
        // The `trace_replay` *stage bucket* is part of the fixed stage
        // schema (present, zero simulated time, on and off alike); the
        // capture/replay *counters* must never leak into it.
        let json = on.stage_json().to_string();
        for counter in ["captured", "replayed", "invalidated", "analyses_skipped"] {
            assert!(
                !json.contains(counter),
                "trace-replay counter {counter:?} leaked into stage JSON: {json}"
            );
        }
        assert_eq!(json, off.stage_json().to_string(), "stage JSON differs with replay on/off");
        assert_eq!(on.makespan, off.makespan);
    }

    /// Transparency of the SDC surface, mirroring the trace-replay
    /// contract: `RunReport.sdc` carries the corruption/defense counters,
    /// but `stage_json()` — the byte-compared observable — must never
    /// mention them; and an *inactive* replication config must leave the
    /// whole report identical to one from a config without the field.
    #[test]
    fn sdc_stats_stay_out_of_stage_json() {
        use crate::sdc::ReplicationConfig;
        let mut b = ProgramBuilder::new();
        let mut fs = FieldSpaceDesc::new();
        let f = fs.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fs);
        let r = b.forest.create_region(Domain::range(16), fs);
        let p = equal_partition_1d(&mut b.forest, r.space, 8);
        let ident = b.identity_functor();
        let t = b.task_modeled("t");
        for _ in 0..4 {
            b.index_launch(IndexLaunchDesc {
                task: t,
                domain: Domain::range(8),
                reqs: vec![RegionReq {
                    partition: p,
                    functor: ident,
                    privilege: Privilege::ReadWrite,
                    fields: vec![f],
                    tree: r.tree,
                    field_space: fs,
                }],
                scalars: vec![],
                cost: CostSpec::Uniform(SimTime::us(25)),
                shard: None,
            });
        }
        let program = b.build();

        let cfg = RuntimeConfig::scale(2)
            .with_corruption(7)
            .with_replication(ReplicationConfig::all(2));
        let on = execute(&program, &cfg);
        let sdc = on.sdc.clone().expect("a corrupting run must report sdc stats");
        assert!(
            sdc.replicated_tasks > 0 && sdc.replicas > 0,
            "replicate-all must have replicated something: {sdc:?}"
        );
        assert_eq!(sdc.escaped, 0, "replication covered every task: {sdc:?}");
        let json = on.stage_json().to_string();
        for counter in [
            "replicated_tasks",
            "replicas",
            "detected",
            "quarantined",
            "reruns",
            "escaped",
            "payload_detected",
            "payload_escaped",
        ] {
            assert!(
                !json.contains(counter),
                "sdc counter {counter:?} leaked into stage JSON: {json}"
            );
        }

        let plain = execute(&program, &RuntimeConfig::scale(2));
        let inert =
            execute(&program, &RuntimeConfig::scale(2).with_replication(ReplicationConfig::None));
        assert!(inert.sdc.is_none(), "an inactive policy must not create the sdc runtime");
        assert_eq!(plain.stage_json().to_string(), inert.stage_json().to_string());
        assert_eq!(plain.makespan, inert.makespan);
        assert_eq!(plain.messages, inert.messages);
        assert_eq!(plain.bytes, inert.bytes);
    }

    /// The physical-analysis weight is ceil(log2 |P|) per requirement: a
    /// 4-way partition costs exactly 2 BVH levels (the old floor+1
    /// formula charged 3).
    #[test]
    fn phys_weight_is_ceil_log2() {
        let cases = [(2u32, 1u32), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)];
        for (children, want) in cases {
            let got = children.max(2).next_power_of_two().trailing_zeros();
            assert_eq!(got, want, "|P| = {children}");
        }
    }
}
