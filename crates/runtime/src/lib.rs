//! A Legion-style task runtime with index launches.
//!
//! This crate implements the runtime side of the paper (§5): the
//! four-stage pipeline — **task issuance**, **logical analysis**,
//! **distribution**, **physical analysis** — followed by data movement and
//! task execution, on the simulated distributed machine of
//! [`il_machine`]. The two axes the evaluation sweeps are both first-class
//! configuration:
//!
//! * `dcr` — dynamic control replication: every node replays the issuance
//!   stream and analyses identically (no communication), vs. the original
//!   centralized mode where node 0 issues everything and distributes work
//!   over the network;
//! * `idx` — index launches: a launch of |D| tasks is carried as a single
//!   O(1) descriptor through issuance/logical analysis/distribution, vs.
//!   being expanded into |D| individual task launches at issuance.
//!
//! Also modeled: Legion's **tracing** (which, without DCR, forces index
//! launches to expand *before* distribution — the effect Figures 5 vs 6
//! isolate) and the hybrid **dynamic safety checks** of `il_analysis`
//! (chargeable, and disableable as in §6.2.3 / Figure 10).
//!
//! ## Simulation architecture
//!
//! Each simulated node runs real runtime logic; what is *modeled* is time:
//!
//! * The issuance + logical-analysis timeline is computed once per run.
//!   Under DCR it is identical on every node by construction (§5: "all
//!   nodes in the machine simultaneously issue identical index launches
//!   ... without any communication"), so computing it once and using it as
//!   the per-node analysis frontier is exact, and keeps the simulation
//!   tractable at 1024 nodes. Without DCR the timeline belongs to node 0
//!   only, and all distribution is explicit messages (with NIC
//!   serialization — the centralized bottleneck is honest).
//! * Dependences between point tasks are computed *exactly* by a
//!   dependence oracle over the region forest (the same non-interference
//!   rules Legion's physical analysis resolves); the runtime charges the
//!   §5 complexity — O(|D|_local · log |P|) per node — for discovering
//!   them, and completion notifications/copies cross the simulated
//!   network as real messages.
//! * Task bodies either execute real kernels over real
//!   [`il_region::PhysicalInstance`]s (validation mode, small machines) or
//!   charge modeled kernel durations (scale mode, up to 1024 nodes).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod depgraph;
pub mod exec;
pub mod pool;
pub mod program;
pub mod replay;
pub mod sdc;
pub mod service;
pub mod shard;
pub mod trace;

pub use config::{CostModel, ExecutionMode, FaultConfig, RuntimeConfig};
pub use context::{InstanceStore, TaskContext};
pub use depgraph::{
    expand_program, expand_program_warm, launch_signature, AnalysisCacheStats, ExpandProfile,
    ExpandedProgram, OpDist, OpSafety, TaskInstance, WarmState,
};
pub use exec::{execute, RecoveryStats, RunReport};
pub use service::{
    policy_by_name, AgedPriority, FairShare, Fifo, PendingView, SchedulingPolicy, Service,
    ServiceConfig, ServiceReport, SessionReport, SessionSpec,
};
pub use pool::ThreadPool;
pub use program::{
    CostSpec, FunctorId, IndexLaunchDesc, Operation, Program, ProgramBuilder, RegionReq, TaskBody,
    TaskId,
};
pub use replay::{LaunchTrace, TraceMark, TraceMarkKind, TraceReplayStats};
pub use sdc::{
    CriticalityThreshold, FlaggedOps, NoReplication, ReplicateAll, ReplicationConfig,
    ReplicationPolicy, SdcStats,
};
pub use shard::{
    block_shard, position_in_domain, round_robin_shard, sharding_identity, ShardDomain, ShardingFn,
};
pub use trace::{AuditReport, TraceEvent, TraceLog};
