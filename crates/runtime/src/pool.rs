//! A small thread pool on `std::sync` primitives.
//!
//! Built on a shared `Mutex<VecDeque>` work queue with a `Condvar` for
//! parking idle workers and `std::sync::mpsc` for result collection —
//! no external concurrency crates. The benchmark harness uses it to run
//! independent simulations (one per node-count × configuration point)
//! across cores; it is also usable for data-parallel kernel work. Jobs
//! here are coarse (whole simulated runs), so a single shared queue is
//! contention-free in practice and keeps the hot path trivially
//! auditable. The pool guarantees that [`map`](ThreadPool::map) returns
//! results in input order, so parallelism never perturbs experiment
//! output.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<Queue>,
    ready: Condvar,
}

/// A fixed-size thread pool over one shared FIFO work queue.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool of `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutdown: false }),
            ready: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|me| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("il-pool-{me}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// A pool sized to the machine (logical CPUs, minimum 1).
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submit a fire-and-forget job.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        queue.jobs.push_back(Box::new(job));
        drop(queue);
        self.shared.ready.notify_one();
    }

    /// Run `jobs` in parallel and collect their results **in input
    /// order**. Blocks until all jobs finish.
    ///
    /// # Panics
    /// If a job panics, the panic is caught on the worker (keeping the
    /// worker alive for other callers) and re-raised here, attributed to
    /// the lowest-index panicking job. All jobs still run to completion
    /// first, so the pool is left in a clean state.
    pub fn map<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx = tx.clone();
            self.execute(move || {
                let out = catch_unwind(AssertUnwindSafe(job));
                // Receiver lives until all results are in.
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        let mut panicked: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        for _ in 0..n {
            let (i, v) = rx
                .recv()
                .expect("pool worker exited before returning a result");
            match v {
                Ok(v) => slots[i] = Some(v),
                Err(payload) => match &panicked {
                    Some((first, _)) if *first < i => {}
                    _ => panicked = Some((i, payload)),
                },
            }
        }
        if let Some((i, payload)) = panicked {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("pool map job {i} panicked: {msg}");
        }
        slots.into_iter().map(|s| s.expect("result present")).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
        }
        self.shared.ready.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.ready.wait(queue).expect("pool queue poisoned");
            }
        };
        // A panicking job must not take the worker down with it: swallow
        // the payload here; `map` re-raises it on the caller's thread
        // (`execute` is fire-and-forget, so there the swallow is final).
        let _ = catch_unwind(AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|i| move || i * i)
            .collect();
        let out = pool.map(jobs);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = counter.clone();
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.map(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn uneven_work_is_balanced() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // A few heavy jobs mixed with light ones.
                    let iters = if i % 8 == 0 { 200_000 } else { 100 };
                    let mut acc = 0u64;
                    for k in 0..iters {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    acc
                }
            })
            .collect();
        assert_eq!(pool.map(jobs).len(), 32);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        pool.execute(|| {});
        drop(pool); // must not hang
    }

    #[test]
    fn drop_drains_pending_jobs() {
        // Jobs already queued at shutdown still run: drop flips the
        // shutdown flag but workers only exit on an empty queue.
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..50 {
                let c = counter.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn nested_map_from_worker_results() {
        // Two sequential waves through the same pool.
        let pool = ThreadPool::new(2);
        let first = pool.map((0..8).map(|i| move || i + 1).collect::<Vec<_>>());
        let jobs: Vec<_> = first.into_iter().map(|v| move || v * 10).collect();
        let second = pool.map(jobs);
        assert_eq!(second, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn empty_map() {
        let pool = ThreadPool::new(2);
        let out: Vec<i32> = pool.map(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn map_resurfaces_job_panic_with_index() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("boom in job")),
            Box::new(|| 3),
        ];
        let err = catch_unwind(AssertUnwindSafe(|| pool.map(jobs))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("pool map job 1 panicked"), "{msg}");
        assert!(msg.contains("boom in job"), "{msg}");
    }

    #[test]
    fn workers_survive_panicking_jobs() {
        // A panicking job must not kill its worker: a 1-thread pool has
        // no spare workers, so a later map only succeeds if the single
        // worker survived the panic.
        let pool = ThreadPool::new(1);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> =
            vec![Box::new(|| panic!("first wave panics"))];
        assert!(catch_unwind(AssertUnwindSafe(|| pool.map(jobs))).is_err());
        let out = pool.map(vec![|| 7, || 8]);
        assert_eq!(out, vec![7, 8]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> i32 + Send>> = (0..8)
            .map(|i| {
                Box::new(move || {
                    if i >= 2 {
                        panic!("job {i} failed");
                    }
                    i
                }) as Box<dyn FnOnce() -> i32 + Send>
            })
            .collect();
        let err = catch_unwind(AssertUnwindSafe(|| pool.map(jobs))).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("formatted panic");
        assert!(msg.contains("pool map job 2 panicked"), "{msg}");
    }
}
