//! A small work-stealing thread pool.
//!
//! Built on `crossbeam-deque` in the classic injector/worker/stealer
//! arrangement. The benchmark harness uses it to run independent
//! simulations (one per node-count × configuration point) across cores;
//! it is also usable for data-parallel kernel work. The pool guarantees
//! that [`map`](ThreadPool::map) returns results in input order, so
//! parallelism never perturbs experiment output.

use crossbeam_channel::{unbounded, Sender};
use crossbeam_deque::{Injector, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    injector: Injector<Job>,
    stealers: Vec<Stealer<Job>>,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn a pool of `threads` workers (at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let workers: Vec<Worker<Job>> = (0..threads).map(|_| Worker::new_fifo()).collect();
        let stealers = workers.iter().map(|w| w.stealer()).collect();
        let shared = Arc::new(PoolShared {
            injector: Injector::new(),
            stealers,
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(me, local)| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("il-pool-{me}"))
                    .spawn(move || worker_loop(me, local, shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool { shared, handles }
    }

    /// A pool sized to the machine (logical CPUs, minimum 1).
    pub fn with_default_parallelism() -> Self {
        let n = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Submit a fire-and-forget job.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.shared.injector.push(Box::new(job));
        self.shared.idle_cv.notify_one();
    }

    /// Run `jobs` in parallel and collect their results **in input
    /// order**. Blocks until all jobs finish.
    pub fn map<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        let (tx, rx) = unbounded::<(usize, T)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let tx: Sender<(usize, T)> = tx.clone();
            self.execute(move || {
                let out = job();
                // Receiver lives until all results are in.
                let _ = tx.send((i, out));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, v) = rx.recv().expect("pool worker panicked");
            slots[i] = Some(v);
        }
        slots.into_iter().map(|s| s.expect("result present")).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.idle_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(me: usize, local: Worker<Job>, shared: Arc<PoolShared>) {
    loop {
        // Local queue first, then the injector, then steal from peers.
        let job = local.pop().or_else(|| {
            std::iter::repeat_with(|| {
                shared.injector.steal_batch_and_pop(&local).or_else(|| {
                    shared
                        .stealers
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| *i != me)
                        .map(|(_, s)| s.steal())
                        .collect()
                })
            })
            .find(|s| !s.is_retry())
            .and_then(|s| s.success())
        });
        match job {
            Some(job) => job(),
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Park until new work or shutdown.
                let mut guard = shared.idle_lock.lock();
                if shared.injector.is_empty() && !shared.shutdown.load(Ordering::SeqCst) {
                    shared
                        .idle_cv
                        .wait_for(&mut guard, std::time::Duration::from_millis(10));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..64)
            .map(|i| move || i * i)
            .collect();
        let out = pool.map(jobs);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<_> = (0..100)
            .map(|_| {
                let c = counter.clone();
                move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.map(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn uneven_work_is_balanced() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    // A few heavy jobs mixed with light ones.
                    let iters = if i % 8 == 0 { 200_000 } else { 100 };
                    let mut acc = 0u64;
                    for k in 0..iters {
                        acc = acc.wrapping_mul(31).wrapping_add(k);
                    }
                    acc
                }
            })
            .collect();
        assert_eq!(pool.map(jobs).len(), 32);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map(vec![|| 1, || 2]);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(2);
        pool.execute(|| {});
        drop(pool); // must not hang
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn nested_map_from_worker_results() {
        // Two sequential waves through the same pool.
        let pool = ThreadPool::new(2);
        let first = pool.map((0..8).map(|i| move || i + 1).collect::<Vec<_>>());
        let jobs: Vec<_> = first.into_iter().map(|v| move || v * 10).collect();
        let second = pool.map(jobs);
        assert_eq!(second, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn empty_map() {
        let pool = ThreadPool::new(2);
        let out: Vec<i32> = pool.map(Vec::<fn() -> i32>::new());
        assert!(out.is_empty());
    }
}
