//! Programs: tasks, region requirements, and index-launch descriptors.
//!
//! A [`Program`] is the stream of operations the application's top-level
//! task issues, in program order. Every operation is an
//! [`IndexLaunchDesc`] — the O(1) representation of §3:
//! `forall(D, T, ⟨P₁,f₁⟩, …, ⟨Pₙ,fₙ⟩)`. Whether the runtime *keeps* that
//! compact representation (IDX on) or expands it into |D| individual task
//! launches at issuance (IDX off) is decided by the runtime configuration,
//! not the program.

use crate::context::TaskContext;
use crate::shard::ShardingFn;
use il_analysis::ProjExpr;
use il_geometry::{Domain, DomainPoint};
use il_machine::SimTime;
use il_region::{FieldId, FieldSpaceId, IndexPartitionId, Privilege, RegionForest, RegionTreeId};
use std::fmt;
use std::sync::Arc;

/// Identifier of a registered task variant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Identifier of a registered projection functor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FunctorId(pub u32);

impl fmt::Debug for FunctorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn{}", self.0)
    }
}

/// A task body executed in validation mode. The body receives a
/// [`TaskContext`] with typed accessors for each region requirement.
pub type TaskBody = Arc<dyn Fn(&mut TaskContext) + Send + Sync>;

/// A registered task variant.
#[derive(Clone)]
pub struct TaskDesc {
    /// Human-readable name (diagnostics and stats).
    pub name: String,
    /// The kernel body (absent for cost-only tasks).
    pub body: Option<TaskBody>,
}

/// A region requirement of an index launch: ⟨Pᵢ, fᵢ⟩ plus privilege and
/// fields (§3).
#[derive(Clone, Debug)]
pub struct RegionReq {
    /// The partition sub-collections are selected from.
    pub partition: IndexPartitionId,
    /// The projection functor mapping launch point → color.
    pub functor: FunctorId,
    /// Declared privilege.
    pub privilege: Privilege,
    /// Fields accessed (empty = all fields of the field space).
    pub fields: Vec<FieldId>,
    /// The region tree of the partitioned collection.
    pub tree: RegionTreeId,
    /// The collection's field space (sizes for data-movement costs).
    pub field_space: FieldSpaceId,
}

/// Per-task kernel duration in scale mode.
#[derive(Clone)]
pub enum CostSpec {
    /// Every point task takes the same time.
    Uniform(SimTime),
    /// Duration depends on the launch point (e.g. DOM wavefront tasks
    /// whose slice sizes vary).
    PerPoint(Arc<dyn Fn(DomainPoint) -> SimTime + Send + Sync>),
}

impl CostSpec {
    /// Kernel duration of the task at `point`.
    pub fn at(&self, point: DomainPoint) -> SimTime {
        match self {
            CostSpec::Uniform(t) => *t,
            CostSpec::PerPoint(f) => f(point),
        }
    }
}

impl fmt::Debug for CostSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostSpec::Uniform(t) => write!(f, "uniform({t})"),
            CostSpec::PerPoint(_) => write!(f, "per-point"),
        }
    }
}

/// The O(1) descriptor of a group of |D| parallel tasks.
#[derive(Clone)]
pub struct IndexLaunchDesc {
    /// The task to launch at every domain point.
    pub task: TaskId,
    /// The launch domain D.
    pub domain: Domain,
    /// Region requirements ⟨Pᵢ, fᵢ⟩ with privileges.
    pub reqs: Vec<RegionReq>,
    /// Scalar by-value arguments, passed to every point task.
    pub scalars: Vec<f64>,
    /// Modeled kernel duration.
    pub cost: CostSpec,
    /// Sharding override (None = block sharding over the domain).
    pub shard: Option<ShardingFn>,
}

impl fmt::Debug for IndexLaunchDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "forall({:?}, {:?}, {} reqs)",
            self.domain, self.task, self.reqs.len()
        )
    }
}

/// One operation of the issuance stream.
#[derive(Clone, Debug)]
pub enum Operation {
    /// An index launch (possibly of a single point).
    IndexLaunch(IndexLaunchDesc),
}

impl Operation {
    /// The launch inside.
    pub fn launch(&self) -> &IndexLaunchDesc {
        match self {
            Operation::IndexLaunch(l) => l,
        }
    }
}

/// A complete program: shape metadata, registries, and the operation
/// stream in program order.
pub struct Program {
    /// The region forest (index spaces, partitions, field spaces).
    pub forest: RegionForest,
    /// Registered projection functors.
    pub functors: Vec<ProjExpr>,
    /// Registered task variants.
    pub tasks: Vec<TaskDesc>,
    /// The issuance stream.
    pub ops: Vec<Operation>,
    /// Index of the first timed operation (ops before this are setup /
    /// initialization and excluded from throughput).
    pub timed_from: usize,
}

impl Program {
    /// The functor expression for an id.
    pub fn functor(&self, id: FunctorId) -> &ProjExpr {
        &self.functors[id.0 as usize]
    }

    /// The task descriptor for an id.
    pub fn task(&self, id: TaskId) -> &TaskDesc {
        &self.tasks[id.0 as usize]
    }

    /// Total point tasks across the (timed and untimed) stream.
    pub fn total_tasks(&self) -> u64 {
        self.ops.iter().map(|op| op.launch().domain.volume()).sum()
    }
}

/// Builder for [`Program`]s. Owns the region forest during construction.
pub struct ProgramBuilder {
    /// The forest being built (public so apps can create regions and
    /// partitions directly with the `il_region` operators).
    pub forest: RegionForest,
    functors: Vec<ProjExpr>,
    tasks: Vec<TaskDesc>,
    ops: Vec<Operation>,
    timed_from: usize,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new() -> Self {
        ProgramBuilder {
            forest: RegionForest::new(),
            functors: Vec::new(),
            tasks: Vec::new(),
            ops: Vec::new(),
            timed_from: 0,
        }
    }

    /// Register a projection functor; structurally identical functors are
    /// deduplicated so analysis verdicts can be cached per id.
    pub fn functor(&mut self, expr: ProjExpr) -> FunctorId {
        if let Some(i) = self.functors.iter().position(|f| f.structurally_eq(&expr)) {
            return FunctorId(i as u32);
        }
        let id = FunctorId(self.functors.len() as u32);
        self.functors.push(expr);
        id
    }

    /// The identity functor (registered once).
    pub fn identity_functor(&mut self) -> FunctorId {
        self.functor(ProjExpr::Identity)
    }

    /// Register a task variant with a real kernel body.
    pub fn task<F>(&mut self, name: &str, body: F) -> TaskId
    where
        F: Fn(&mut TaskContext) + Send + Sync + 'static,
    {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskDesc {
            name: name.to_string(),
            body: Some(Arc::new(body)),
        });
        id
    }

    /// Register a cost-only task (no kernel body; scale mode only).
    pub fn task_modeled(&mut self, name: &str) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(TaskDesc { name: name.to_string(), body: None });
        id
    }

    /// Append an index launch to the stream.
    pub fn index_launch(&mut self, launch: IndexLaunchDesc) {
        assert!(!launch.domain.is_empty(), "empty launch domain");
        assert!(
            (launch.task.0 as usize) < self.tasks.len(),
            "unregistered task {:?}",
            launch.task
        );
        for req in &launch.reqs {
            assert!(
                (req.functor.0 as usize) < self.functors.len(),
                "unregistered functor {:?}",
                req.functor
            );
        }
        self.ops.push(Operation::IndexLaunch(launch));
    }

    /// Mark the start of the timed portion of the program (everything
    /// appended so far is setup).
    pub fn start_timing(&mut self) {
        self.timed_from = self.ops.len();
    }

    /// Finish construction.
    pub fn build(self) -> Program {
        Program {
            forest: self.forest,
            functors: self.functors,
            tasks: self.tasks,
            ops: self.ops,
            timed_from: self.timed_from,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc};

    fn simple_program() -> Program {
        let mut b = ProgramBuilder::new();
        let mut fsd = FieldSpaceDesc::new();
        fsd.add("x", FieldKind::F64);
        let fs = b.forest.create_field_space(fsd);
        let region = b.forest.create_region(Domain::range(100), fs);
        let part = equal_partition_1d(&mut b.forest, region.space, 4);
        let id = b.identity_functor();
        let t = b.task_modeled("touch");
        b.start_timing();
        b.index_launch(IndexLaunchDesc {
            task: t,
            domain: Domain::range(4),
            reqs: vec![RegionReq {
                partition: part,
                functor: id,
                privilege: Privilege::ReadWrite,
                fields: vec![],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(50)),
            shard: None,
        });
        b.build()
    }

    #[test]
    fn build_and_inspect() {
        let p = simple_program();
        assert_eq!(p.ops.len(), 1);
        assert_eq!(p.total_tasks(), 4);
        assert_eq!(p.timed_from, 0);
        assert!(p.functor(FunctorId(0)).is_identity());
        assert_eq!(p.task(TaskId(0)).name, "touch");
    }

    #[test]
    fn functors_are_deduplicated() {
        let mut b = ProgramBuilder::new();
        let a = b.functor(ProjExpr::linear(2, 1));
        let c = b.functor(ProjExpr::linear(2, 1));
        let d = b.functor(ProjExpr::linear(2, 2));
        assert_eq!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn cost_spec_eval() {
        let u = CostSpec::Uniform(SimTime::us(5));
        assert_eq!(u.at(DomainPoint::new1(3)), SimTime::us(5));
        let p = CostSpec::PerPoint(Arc::new(|pt: DomainPoint| SimTime::us(pt.x() as u64)));
        assert_eq!(p.at(DomainPoint::new1(7)), SimTime::us(7));
    }

    #[test]
    #[should_panic(expected = "unregistered task")]
    fn launch_of_unknown_task_rejected() {
        let mut b = ProgramBuilder::new();
        b.index_launch(IndexLaunchDesc {
            task: TaskId(5),
            domain: Domain::range(1),
            reqs: vec![],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::ZERO),
            shard: None,
        });
    }
}
