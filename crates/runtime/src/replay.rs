//! Whole-sequence trace capture & replay for iterative launch programs.
//!
//! All three golden apps are timestep loops that re-issue the same
//! index-launch sequence every iteration, yet each iteration re-runs the
//! full safety analysis, sharding, and dependence scan. Following
//! *Automatic Tracing in Task-Based Runtime Systems* (see PAPERS.md),
//! this module memoizes the whole sequence: a [`Recorder`] watches the
//! per-op *trace keys* (launch signature + region tree + field space +
//! sharding-functor identity), detects a repeated window, captures the
//! window's fully expanded dependence graph, sharding decisions, and
//! distribution plans as a [`LaunchTrace`], and on later iterations
//! splices the trace into the expansion instead of re-analyzing.
//!
//! # Soundness
//!
//! The dependence oracle's transition over a window is a deterministic
//! function of (a) the program shapes named by the trace keys and (b)
//! the entry states of every space the window touches or overlaps — and
//! it is *equivariant* under uniform shifts of task refs, op indices,
//! and reduction-epoch ids (the oracle only compares those for equality
//! and order). A trace therefore validates its entry in two modes, per
//! member space:
//!
//! * A [`TraceMember::Full`] member is rewritten by the window: replay
//!   requires exact entry equality in *normalized* form (refs relative
//!   to the window's bases) — such state is rebuilt every iteration, so
//!   its refs sit at stable relative offsets.
//! * A [`TraceMember::Append`] member's window transition is pure
//!   accumulation: readers, reducers, and consumption records gain
//!   entries but never lose or reorder the existing ones (the one
//!   permitted in-place mutation is a recorded field-mask *clear* of the
//!   consumption record, which a fresh reduction epoch applies to every
//!   record present). Such state — write-once read-forever coefficients,
//!   or a partially covered reduction buffer like circuit's shared
//!   ghost nodes — drifts across iterations precisely by those appends,
//!   so replay validates it *absolutely*: writers and open epochs must
//!   match exactly, the captured readers and reducers must be a prefix
//!   of the current lists, and the consumed field-union must be
//!   unchanged. Whatever accumulated since capture (the delta) gets the
//!   same dependence edges the live scan would have produced, injected
//!   per recorded consultation; fold-copy and consumption flips that a
//!   delta could cause are guarded per consult and invalidate instead.
//!
//! Dependence edges into pre-window tasks are encoded to match whichever
//! argument validated them: relative for refs pinned by a normalized
//! member, absolute for refs pinned by an append member's absolute
//! entry. Replay additionally requires the overlap-list lengths of
//! every directly touched space to match — lengths stand in for list
//! contents because the lists are append-only. Any partition,
//! privilege, domain, functor, or sharding change alters the trace
//! keys; any unaccounted state drift (or a new overlapping space
//! registered in between) fails the entry check. Both invalidate: the
//! trace is dropped and the sequence re-captured, never replayed stale.
//! `tests/trace_replay.rs` and the differential-oracle corpus pin
//! replay-on and replay-off expansions byte-identical.

use crate::depgraph::{CopyIn, Expander, OpDist, OpSafety, SpaceState, TaskInstance, TaskRef};
use crate::depgraph::launch_signature;
use crate::program::Program;
use crate::shard::sharding_identity;
use il_geometry::DomainPoint;
use il_machine::NodeId;
use il_region::{FieldId, IndexSpaceId, Privilege, RegionTreeId, ReductionOpId};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Longest launch sequence the rolling window will recognize as one
/// iteration. Soleil, the widest golden app, expands each timestep into
/// 46 launches at the smallest test mesh (every phase walks the x/y/z
/// face partitions separately); 64 leaves headroom for fused
/// multi-phase loops.
const MAX_PERIOD: usize = 64;

/// Captured traces kept live, most recently used first. Small: a program
/// usually has one hot loop, occasionally a few phases.
const MAX_TRACES: usize = 8;

/// Host-side statistics of trace capture & replay for one expansion.
/// Purely observability — replay never changes the expanded program or
/// any simulated time, only how much host work the expansion repeats —
/// and therefore deliberately excluded from `RunReport::stage_json`,
/// like the analysis-cache stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceReplayStats {
    /// True when trace replay was enabled for this expansion.
    pub enabled: bool,
    /// Launch-sequence windows captured as traces.
    pub captured: u64,
    /// Windows materialized by replaying a captured trace.
    pub replayed: u64,
    /// Traces dropped because their keys diverged mid-sequence, their
    /// entry state stopped matching, or (under fault injection) a crash
    /// re-sharded one of their replayed ops.
    pub invalidated: u64,
    /// Per-launch analyses (safety verdict + sharding + dependence scan)
    /// skipped by replays.
    pub analyses_skipped: u64,
    /// Point tasks materialized from traces instead of fresh expansion.
    pub tasks_replayed: u64,
}

/// What a [`TraceMark`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMarkKind {
    /// The window starting here was captured as a new trace.
    Captured,
    /// The window starting here was replayed from a trace.
    Replayed,
    /// One or more traces were invalidated at this op.
    Invalidated,
}

/// A capture/replay/invalidate event at op `op` covering `len` ops, in
/// expansion order. The executor turns these into zero-duration
/// `TraceLog` marker events under `Stage::TraceReplay`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceMark {
    /// First op of the affected window.
    pub op: u32,
    /// Ops the event covers (window length; for invalidations, the
    /// number of traces dropped).
    pub len: u32,
    /// Event kind.
    pub kind: TraceMarkKind,
}

type SpaceKey = (RegionTreeId, IndexSpaceId);

/// A [`SpaceState`] with every task ref, op index, and epoch id made
/// relative to the capture window's bases, so states from different
/// iterations compare equal exactly when they are uniform shifts of one
/// another.
#[derive(Clone, Debug, PartialEq, Eq)]
struct NormState {
    writes: Vec<(i64, usize, u64, Option<ReductionOpId>)>,
    readers: Vec<(i64, u64)>,
    reducers: Vec<(ReductionOpId, i64, usize, u64)>,
    epochs: Vec<(ReductionOpId, u64, i64)>,
    consumed: Vec<(i64, u64)>,
}

/// Normalize `s` against the window bases `(tb, ob, eb)` = (first task
/// ref, first op index, first epoch id the window would allocate).
fn normalize(s: &SpaceState, tb: i64, ob: i64, eb: i64) -> NormState {
    NormState {
        writes: s.writes.iter().map(|&(t, rq, m, red)| (t as i64 - tb, rq, m, red)).collect(),
        readers: s.readers.iter().map(|&(t, m)| (t as i64 - tb, m)).collect(),
        reducers: s.reducers.iter().map(|&(op, t, rq, m)| (op, t as i64 - tb, rq, m)).collect(),
        epochs: s.epochs.iter().map(|&(op, bits, e)| (op, bits, e as i64 - eb)).collect(),
        consumed: s.consumed.iter().map(|&(o, m)| (o as i64 - ob, m)).collect(),
    }
}

/// Invert [`normalize`] against fresh bases. Replay only shifts refs
/// forward, so every result fits its unsigned type; a failure here would
/// mean the recorder spliced a trace below its own capture point, which
/// is a bug worth a loud panic.
fn denormalize(ns: &NormState, tb: i64, ob: i64, eb: i64) -> SpaceState {
    let task = |t: i64| -> TaskRef { u32::try_from(t + tb).expect("replayed task ref in range") };
    let epoch = |e: i64| -> u32 { u32::try_from(e + eb).expect("replayed epoch id in range") };
    let op = |o: i64| -> u32 { u32::try_from(o + ob).expect("replayed op index in range") };
    SpaceState {
        writes: ns.writes.iter().map(|&(t, rq, m, red)| (task(t), rq, m, red)).collect(),
        readers: ns.readers.iter().map(|&(t, m)| (task(t), m)).collect(),
        reducers: ns.reducers.iter().map(|&(o, t, rq, m)| (o, task(t), rq, m)).collect(),
        epochs: ns.epochs.iter().map(|&(o, bits, e)| (o, bits, epoch(e))).collect(),
        consumed: ns.consumed.iter().map(|&(o, m)| (op(o), m)).collect(),
    }
}

/// A captured task reference, encoded to match the validity argument
/// that pins it. Refs into the window itself and refs pinned by a
/// normalized ([`TraceMember::Full`]) entry state shift with the window;
/// refs pinned by an absolute ([`TraceMember::Append`]) entry state
/// name the very same task on every replay.
#[derive(Clone, Copy, Debug)]
enum Ref {
    /// Relative to the window's task base.
    Rel(i64),
    /// An absolute pre-window task.
    Abs(TaskRef),
}

/// A captured reduction-epoch id, encoded like [`Ref`]: epochs the
/// window opens (or that a normalized member pins) shift with the
/// window's epoch base; epochs pinned by an append member's exact entry
/// are absolute.
#[derive(Clone, Copy, Debug)]
enum ERef {
    /// Relative to the window's epoch base.
    Rel(i64),
    /// An absolute pre-window epoch.
    Abs(u32),
}

/// One recorded consultation of an append member by a window task's
/// requirement. At replay, state the member accumulated since capture
/// (readers and reducers beyond the captured prefix) gains exactly the
/// dependence edges the live scan would have produced, dispatched on
/// `privilege`; `mask`, `consumed`, and `fold_prefix` drive the
/// validity guards for flips a delta could cause (a fold copy or a
/// consumption record the capture did not record).
#[derive(Clone, Copy, Debug)]
struct Consult {
    member: u32,
    mask: u64,
    privilege: Privilege,
    /// The consumed field union this consult saw at capture.
    consumed: u64,
    /// True when the consult's fold copy (if any) came from a reducer
    /// that predates the window — iterated before any delta, so a delta
    /// reducer can never preempt it.
    fold_prefix: bool,
}

/// A captured incoming copy, with the producer ref encoded per its
/// validity mode.
#[derive(Clone, Debug)]
struct NormCopy {
    from: Ref,
    src_space: IndexSpaceId,
    dst_req: usize,
    tree: RegionTreeId,
    fields: Vec<FieldId>,
    bytes: u64,
    fold: Option<ReductionOpId>,
}

/// One captured point task: everything [`TaskInstance`] holds plus its
/// dependence edges and copies, refs window-relative.
#[derive(Clone, Debug)]
struct TraceTask {
    point_idx: u32,
    point: DomainPoint,
    owner: NodeId,
    subspaces: Vec<IndexSpaceId>,
    reduce_fill: Vec<Vec<(FieldId, ERef)>>,
    deps: Vec<Ref>,
    copies: Vec<NormCopy>,
    /// Consultations of [`TraceMember::Append`] spaces by this task's
    /// requirements. At replay, state those spaces accumulated since
    /// capture gains the same dependence edges the live scan would have
    /// produced (dep lists are consumed as multisets, so appending them
    /// is exact).
    consults: Vec<Consult>,
}

/// How one member space participates in a captured window, which decides
/// how its entry state is validated at replay time (see the module docs'
/// soundness section).
#[derive(Clone, Debug)]
enum TraceMember {
    /// Some window access overlapping this space carries write,
    /// read-write, or reduce privilege: the window's output depends on
    /// the full entry state (reader lists feed anti-dependence edges),
    /// and the window may rewrite any part of it. Replay requires exact
    /// normalized entry equality and writes the absolute(-ized) exit
    /// state back. `None` = no state existed at that point.
    Full { key: SpaceKey, entry: Option<NormState>, exit: Option<NormState> },
    /// The window's transition of this space is pure accumulation:
    /// readers, reducers, open epochs, and consumption records gain
    /// entries (the tails below, window-relative) but the pre-window
    /// entries survive untouched — except consumption records, whose
    /// field bits a fresh reduction epoch may clear (`consumed_clear`,
    /// applied to *every* record present, so replay can reapply it to
    /// whatever accumulated since capture). This covers write-once
    /// read-forever state (stencil coefficients: reader appends only)
    /// and partially covered reduction buffers (circuit's shared ghost
    /// nodes: reducer, reader, and consumption appends every
    /// iteration). Such state drifts across iterations precisely by
    /// those appends, so replay validates it *absolutely*: `entry`'s
    /// writes and epochs must match the current state exactly, its
    /// readers and reducers must be a *prefix* of the current lists,
    /// and the consumed field-union must be unchanged (which pins every
    /// fold-copy byte count). State accumulated since capture is
    /// handled by delta edges injected via [`TraceTask::consults`].
    Append {
        key: SpaceKey,
        /// Whether any state existed at capture entry. When it did not,
        /// no consultation of this space was recorded, so replay
        /// requires the state to still be absent (or fully empty).
        entry_existed: bool,
        entry: SpaceState,
        readers_tail: Vec<(i64, u64)>,
        reducers_tail: Vec<(ReductionOpId, i64, usize, u64)>,
        epochs_tail: Vec<(ReductionOpId, u64, i64)>,
        consumed_clear: u64,
        consumed_tail: Vec<(i64, u64)>,
    },
}

/// One captured operation: verdict, task count, and the distribution
/// plan with window-relative task refs.
#[derive(Clone, Debug)]
struct TraceOp {
    safety: OpSafety,
    ntasks: u32,
    groups: Vec<(NodeId, Vec<i64>)>,
    slices: Vec<(i64, i64, NodeId)>,
}

/// A replayable capture of one launch-sequence window: its trace keys,
/// validity data (entry states + overlap-list lengths), and the full
/// expansion output (tasks, edges, copies, verdicts, distribution
/// plans) in window-relative form.
pub struct LaunchTrace {
    /// Per-op trace keys of the window (see [`trace_keys`]).
    keys: Vec<u64>,
    /// Every space the window's tasks directly touch, in first-touch
    /// order, with its overlap-list length at capture exit. Replay
    /// requires the current lengths to match: the lists are append-only,
    /// so equal length means equal contents — no overlapping space was
    /// registered since capture.
    direct: Vec<(SpaceKey, usize)>,
    /// Every space the window touches or overlaps, each validated and
    /// reapplied per its participation mode. Replay requires every
    /// member's entry check to pass, then writes exit states (full
    /// members) or splices reader tails (read-only members) instead of
    /// re-running the scan.
    members: Vec<TraceMember>,
    /// The captured ops.
    ops: Vec<TraceOp>,
    /// The captured tasks, op-major.
    tasks: Vec<TraceTask>,
    /// Reduction epochs the window opened (the epoch counter advances by
    /// this much on replay, keeping executor fill markers unique).
    epochs_opened: u32,
}

impl LaunchTrace {
    /// Ops the trace covers.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Traces are never empty (a window has at least one op).
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

/// The trace recorder driving one expansion: rolling-window detection,
/// capture, validity checking, and replay.
pub(crate) struct Recorder {
    enabled: bool,
    stats: TraceReplayStats,
    marks: Vec<TraceMark>,
    /// Live traces, most recently used first.
    traces: Vec<LaunchTrace>,
    /// Warm-seeded traces (a tenant's previous session of this program)
    /// awaiting their first successful entry validation. A pending trace
    /// can never replay stale — it is only promoted to `traces` at an op
    /// where both its key window *and* its captured entry state match
    /// exactly, which for an iterative app is the loop's steady state
    /// (iteration 2 onward). A pending trace whose entry never matches
    /// this run is silently discarded at [`Recorder::finish`] — it is a
    /// candidate that never became applicable, not an invalidation of a
    /// live trace, so it perturbs no lifecycle counters or marks.
    warm: Vec<LaunchTrace>,
}

impl Recorder {
    pub(crate) fn new(enabled: bool) -> Self {
        Recorder {
            enabled,
            stats: TraceReplayStats { enabled, ..TraceReplayStats::default() },
            marks: Vec::new(),
            traces: Vec::new(),
            warm: Vec::new(),
        }
    }

    /// Seed the recorder with traces captured by an earlier expansion of
    /// the same program (a tenant's warm state in service mode). A
    /// disabled recorder discards the seed.
    pub(crate) fn seed_traces(&mut self, traces: Vec<LaunchTrace>) {
        if self.enabled {
            self.warm = traces;
        }
    }

    /// Consume the recorder into its stats, marks, and surviving traces
    /// (the warm state for a tenant's next session of this program).
    /// Warm candidates that validated were promoted into the live list;
    /// ones that never did are dropped here, bounding carry-over state.
    pub(crate) fn finish(self) -> (TraceReplayStats, Vec<TraceMark>, Vec<LaunchTrace>) {
        (self.stats, self.marks, self.traces)
    }

    /// Smallest period `p ≤ MAX_PERIOD` such that the `p` ops before `i`
    /// and the `p` ops starting at `i` carry identical trace keys — the
    /// signature of an iterative sequence entering its next repetition.
    pub(crate) fn detect(&self, i: usize, keys: &[u64]) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        for p in 1..=MAX_PERIOD {
            if p > i || i + p > keys.len() {
                break;
            }
            if keys[i - p..i] == keys[i..i + p] {
                return Some(p);
            }
        }
        None
    }

    /// Try to replay a stored trace at op `i`. Returns the number of ops
    /// spliced in on success. A trace whose keys match but whose entry
    /// state does not is invalidated (dropped, never replayed stale); a
    /// trace whose key sequence diverges mid-window — a partition,
    /// privilege, domain, functor, or sharding change in the loop body —
    /// is likewise invalidated the moment its first key reappears with a
    /// different continuation.
    pub(crate) fn try_replay(
        &mut self,
        xp: &mut Expander<'_>,
        i: usize,
        keys: &[u64],
    ) -> Option<usize> {
        if !self.enabled {
            return None;
        }
        let pos = self.traces.iter().position(|tr| {
            let p = tr.keys.len();
            i + p <= keys.len() && keys[i..i + p] == tr.keys[..]
        });
        match pos {
            Some(idx) => {
                let tr = self.traces.remove(idx);
                if self.entry_matches(xp, &tr) {
                    let p = tr.keys.len();
                    self.apply(xp, i, &tr);
                    self.stats.replayed += 1;
                    self.stats.analyses_skipped += p as u64;
                    self.stats.tasks_replayed += tr.tasks.len() as u64;
                    self.marks.push(TraceMark {
                        op: i as u32,
                        len: p as u32,
                        kind: TraceMarkKind::Replayed,
                    });
                    // Most recently used to the front.
                    self.traces.insert(0, tr);
                    Some(p)
                } else {
                    self.stats.invalidated += 1;
                    self.marks.push(TraceMark {
                        op: i as u32,
                        len: 1,
                        kind: TraceMarkKind::Invalidated,
                    });
                    None
                }
            }
            None => {
                // Warm candidates: a seeded trace replays the moment its
                // key window and captured entry state both match — for
                // an iterative app that is the loop's first repetition,
                // one full iteration earlier than a fresh capture could.
                let warm_pos = self.warm.iter().position(|tr| {
                    let p = tr.keys.len();
                    i + p <= keys.len() && keys[i..i + p] == tr.keys[..]
                });
                if let Some(widx) = warm_pos {
                    if self.entry_matches(xp, &self.warm[widx]) {
                        let tr = self.warm.remove(widx);
                        let p = tr.keys.len();
                        self.apply(xp, i, &tr);
                        self.stats.replayed += 1;
                        self.stats.analyses_skipped += p as u64;
                        self.stats.tasks_replayed += tr.tasks.len() as u64;
                        self.marks.push(TraceMark {
                            op: i as u32,
                            len: p as u32,
                            kind: TraceMarkKind::Replayed,
                        });
                        self.traces.insert(0, tr);
                        return Some(p);
                    }
                    // Entry not yet (or no longer) applicable: leave the
                    // candidate pending; the normal detect/capture path
                    // proceeds unperturbed alongside it.
                }
                // No full match: any trace whose *first* key matches op
                // `i` has had its continuation edited — drop it now so a
                // later partial coincidence can never replay it.
                let before = self.traces.len();
                self.traces.retain(|tr| tr.keys[0] != keys[i]);
                let dropped = (before - self.traces.len()) as u64;
                if dropped > 0 {
                    self.stats.invalidated += dropped;
                    self.marks.push(TraceMark {
                        op: i as u32,
                        len: dropped as u32,
                        kind: TraceMarkKind::Invalidated,
                    });
                }
                None
            }
        }
    }

    /// Capture ops `[i, i+p)` as a new trace while expanding them
    /// normally: snapshot the entry states, run the ordinary expansion
    /// and scans, snapshot the exit states, and store the whole window
    /// in window-relative form. Transparent by construction — the ops
    /// are materialized exactly as the non-recording path would.
    pub(crate) fn capture(&mut self, xp: &mut Expander<'_>, i: usize, p: usize, keys: &[u64]) {
        let tb = xp.tasks.len() as i64;
        let ob = i as i64;
        let eb = xp.oracle.next_epoch as i64;

        // Expand first (no oracle effects): we need the subspaces to know
        // which states to snapshot before any scan mutates them.
        for o in 0..p {
            xp.expand_op(i + o);
        }
        let task_lo = tb as usize;
        let task_hi = xp.tasks.len();

        // Directly touched spaces, first-touch order.
        let mut direct_keys: Vec<SpaceKey> = Vec::new();
        let mut seen: HashSet<SpaceKey> = HashSet::new();
        for t in task_lo..task_hi {
            let op_idx = xp.tasks[t].op as usize;
            let launch = xp.program.ops[op_idx].launch();
            for (req_idx, req) in launch.reqs.iter().enumerate() {
                let key = (req.tree, xp.tasks[t].subspaces[req_idx]);
                if seen.insert(key) {
                    direct_keys.push(key);
                }
            }
        }

        // Entry snapshot: the direct spaces plus everything currently on
        // their overlap lists. Spaces first registered *during* the scan
        // below join the member list afterwards with entry = None, which
        // is exact — an unregistered space never has state.
        let mut members: Vec<SpaceKey> = Vec::new();
        let mut member_seen: HashSet<SpaceKey> = HashSet::new();
        for &key in &direct_keys {
            if member_seen.insert(key) {
                members.push(key);
            }
            if let Some(list) = xp.oracle.overlaps.get(&key) {
                for &o_space in list {
                    let okey = (key.0, o_space);
                    if member_seen.insert(okey) {
                        members.push(okey);
                    }
                }
            }
        }
        let mut entries: HashMap<SpaceKey, SpaceState> = HashMap::new();
        for &key in &members {
            if let Some(s) = xp.oracle.states.get(&key) {
                entries.insert(key, s.clone());
            }
        }

        // The ordinary dependence scans, with provenance recording on:
        // the recorder needs to know which member space produced each
        // run of edges and copies to encode their refs soundly.
        xp.oracle.prov = Some(Default::default());
        for o in 0..p {
            xp.scan_op(i + o);
        }
        let prov = xp.oracle.prov.take().expect("provenance enabled above");
        let mut clear_by_key: HashMap<SpaceKey, u64> = HashMap::new();
        for &(key, bits) in &prov.clears {
            *clear_by_key.entry(key).or_insert(0) |= bits;
        }

        // Exit member list: the scan may have registered new spaces and
        // appended to the direct lists; fold those in (entry = None).
        let mut direct: Vec<(SpaceKey, usize)> = Vec::with_capacity(direct_keys.len());
        for &key in &direct_keys {
            let list = xp.oracle.overlaps.get(&key).expect("scan registered every direct space");
            for &o_space in list {
                let okey = (key.0, o_space);
                if member_seen.insert(okey) {
                    members.push(okey);
                }
            }
            direct.push((key, list.len()));
        }
        // Classify every member by its window transition. A member
        // whose state changed by nothing but appends (plus the recorded
        // consumed clears) is validated absolutely; anything else is
        // validated in normalized (window-relative) form.
        let member_states: Vec<TraceMember> = members
            .iter()
            .map(|&key| {
                let entry_abs = entries.remove(&key);
                let exit_abs = xp.oracle.states.get(&key).cloned();
                let e = entry_abs.clone().unwrap_or_default();
                let x = exit_abs.clone().unwrap_or_default();
                let clear = clear_by_key.get(&key).copied().unwrap_or(0);
                // What the window's clears leave of the entry's
                // consumption records: clears hit every record present,
                // and window pushes never merge into pre-window records
                // (they key on the pushing op's index).
                let surviving: Vec<(u32, u64)> = e
                    .consumed
                    .iter()
                    .map(|&(o, m)| (o, m & !clear))
                    .filter(|&(_, m)| m != 0)
                    .collect();
                let (nr, nx, ne, nc) =
                    (e.readers.len(), e.reducers.len(), e.epochs.len(), surviving.len());
                let pure_append = e.writes == x.writes
                    && x.readers.len() >= nr
                    && x.readers[..nr] == e.readers[..]
                    && x.readers[nr..].iter().all(|&(t, _)| (t as i64) >= tb)
                    && x.reducers.len() >= nx
                    && x.reducers[..nx] == e.reducers[..]
                    && x.reducers[nx..].iter().all(|&(_, t, _, _)| (t as i64) >= tb)
                    && x.epochs.len() >= ne
                    && x.epochs[..ne] == e.epochs[..]
                    && x.epochs[ne..].iter().all(|&(_, _, ep)| (ep as i64) >= eb)
                    && x.consumed.len() >= nc
                    && x.consumed[..nc] == surviving[..]
                    && x.consumed[nc..].iter().all(|&(o, _)| (o as i64) >= ob);
                if pure_append {
                    return TraceMember::Append {
                        key,
                        entry_existed: entry_abs.is_some(),
                        entry: e,
                        readers_tail: x.readers[nr..]
                            .iter()
                            .map(|&(t, m)| (t as i64 - tb, m))
                            .collect(),
                        reducers_tail: x.reducers[nx..]
                            .iter()
                            .map(|&(op, t, rq, m)| (op, t as i64 - tb, rq, m))
                            .collect(),
                        epochs_tail: x.epochs[ne..]
                            .iter()
                            .map(|&(op, bits, ep)| (op, bits, ep as i64 - eb))
                            .collect(),
                        consumed_clear: clear,
                        consumed_tail: x.consumed[nc..]
                            .iter()
                            .map(|&(o, m)| (o as i64 - ob, m))
                            .collect(),
                    };
                }
                TraceMember::Full {
                    key,
                    entry: entry_abs.map(|s| normalize(&s, tb, ob, eb)),
                    exit: exit_abs.map(|s| normalize(&s, tb, ob, eb)),
                }
            })
            .collect();
        let member_index: HashMap<SpaceKey, u32> =
            members.iter().enumerate().map(|(i, &k)| (k, i as u32)).collect();
        let is_append = |idx: u32| matches!(member_states[idx as usize], TraceMember::Append { .. });

        // Group the provenance log per task, in push order.
        let mut runs_by_task: Vec<Vec<usize>> = vec![Vec::new(); task_hi - task_lo];
        for (ci, pe) in prov.consults.iter().enumerate() {
            if !member_index.contains_key(&pe.key) {
                return; // defensive: consulted space missing from members
            }
            runs_by_task[pe.task as usize - task_lo].push(ci);
        }

        // Expansion output, refs encoded per the validity argument of
        // the member that produced each edge: window tasks and
        // full-member refs are window-relative, append-member refs are
        // absolute. If the provenance runs fail to tile a task's lists
        // exactly (which would indicate an edge of unknown origin), the
        // window is not captured — expansion already ran normally
        // above, so bailing costs nothing but the memoization.
        let encode = |t: TaskRef, append: bool| -> Ref {
            if (t as i64) >= tb || !append {
                Ref::Rel(t as i64 - tb)
            } else {
                Ref::Abs(t)
            }
        };
        let rel_task = |t: TaskRef| t as i64 - tb;
        let captured_tasks = (|| -> Option<Vec<TraceTask>> {
            let mut out = Vec::with_capacity(task_hi - task_lo);
            for t in task_lo..task_hi {
                let inst = &xp.tasks[t];
                let launch = xp.program.ops[inst.op as usize].launch();
                let runs = &runs_by_task[t - task_lo];
                let copy_total: usize =
                    runs.iter().map(|&ci| prov.consults[ci].copies as usize).sum();
                if copy_total != xp.copies[t].len() {
                    return None;
                }
                // The final dep list is sorted and deduplicated, so the
                // per-consult runs cannot be sliced back positionally;
                // instead, map every dep *value* to the encoding of the
                // member that produced it. A value produced both by a
                // normalized member (relative pin) and an append member
                // (absolute pin) is ambiguous — the two pins can drift
                // apart — so such a window is not captured.
                let mut enc_map: HashMap<TaskRef, Ref> = HashMap::new();
                let mut copies = Vec::with_capacity(copy_total);
                let mut consults: Vec<Consult> = Vec::new();
                let mut cc = 0usize;
                for &ci in runs {
                    let pe = &prov.consults[ci];
                    let mi = member_index[&pe.key];
                    let append = is_append(mi);
                    for &d in &pe.deps {
                        let enc = encode(d, append);
                        match enc_map.entry(d) {
                            std::collections::hash_map::Entry::Vacant(v) => {
                                v.insert(enc);
                            }
                            std::collections::hash_map::Entry::Occupied(prev) => {
                                if std::mem::discriminant(prev.get())
                                    != std::mem::discriminant(&enc)
                                {
                                    return None;
                                }
                            }
                        }
                    }
                    for c in &xp.copies[t][cc..cc + pe.copies as usize] {
                        copies.push(NormCopy {
                            from: encode(c.from, append),
                            src_space: c.src_space,
                            dst_req: c.dst_req,
                            tree: c.tree,
                            fields: c.fields.clone(),
                            bytes: c.bytes,
                            fold: c.fold,
                        });
                    }
                    cc += pe.copies as usize;
                    if append {
                        consults.push(Consult {
                            member: mi,
                            mask: pe.mask,
                            privilege: pe.privilege,
                            consumed: pe.consumed,
                            fold_prefix: pe.fold_src.map_or(false, |r| (r as i64) < tb),
                        });
                    }
                }
                let deps = {
                    let mut out = Vec::with_capacity(xp.deps[t].len());
                    for d in &xp.deps[t] {
                        match enc_map.get(d) {
                            Some(&enc) => out.push(enc),
                            None => return None, // edge of unknown origin
                        }
                    }
                    out
                };
                // Epoch ids a reduce requirement fills are pinned like
                // task refs: ids the window opened shift with it,
                // pre-window ids on an append member are pinned
                // absolutely by its exact epoch-entry check.
                let reduce_fill = inst
                    .reduce_fill
                    .iter()
                    .enumerate()
                    .map(|(req_idx, fills)| {
                        let key = (launch.reqs[req_idx].tree, inst.subspaces[req_idx]);
                        let append = member_index.get(&key).is_some_and(|&mi| is_append(mi));
                        fills
                            .iter()
                            .map(|&(f, e)| {
                                let er = if (e as i64) >= eb || !append {
                                    ERef::Rel(e as i64 - eb)
                                } else {
                                    ERef::Abs(e)
                                };
                                (f, er)
                            })
                            .collect()
                    })
                    .collect();
                out.push(TraceTask {
                    point_idx: inst.point_idx,
                    point: inst.point,
                    owner: inst.owner,
                    subspaces: inst.subspaces.clone(),
                    reduce_fill,
                    deps,
                    copies,
                    consults,
                });
            }
            Some(out)
        })();
        let Some(tasks) = captured_tasks else {
            return;
        };
        let ops: Vec<TraceOp> = (i..i + p)
            .map(|op_idx| {
                let (lo, hi) = xp.op_tasks[op_idx];
                let d = &xp.dist[op_idx];
                TraceOp {
                    safety: xp.safety[op_idx].clone(),
                    ntasks: hi - lo,
                    groups: d
                        .groups
                        .iter()
                        .map(|(n, ts)| (*n, ts.iter().map(|&t| rel_task(t)).collect()))
                        .collect(),
                    slices: d
                        .slices
                        .iter()
                        .map(|&(lo, hi, n)| (rel_task(lo), rel_task(hi), n))
                        .collect(),
                }
            })
            .collect();

        let trace = LaunchTrace {
            keys: keys[i..i + p].to_vec(),
            direct,
            members: member_states,
            ops,
            tasks,
            epochs_opened: (xp.oracle.next_epoch as i64 - eb) as u32,
        };
        // Replace any trace with the same key sequence, keep the rest,
        // newest first, bounded.
        self.traces.retain(|tr| tr.keys != trace.keys);
        self.traces.insert(0, trace);
        self.traces.truncate(MAX_TRACES);
        self.stats.captured += 1;
        self.marks.push(TraceMark { op: i as u32, len: p as u32, kind: TraceMarkKind::Captured });
    }

    /// Whether the oracle's current state matches the trace's captured
    /// entry exactly (up to the uniform window shift): same overlap-list
    /// lengths on every directly touched space, same normalized state on
    /// every member.
    fn entry_matches(&self, xp: &Expander<'_>, tr: &LaunchTrace) -> bool {
        let tb = xp.tasks.len() as i64;
        let ob = xp.next_op() as i64;
        let eb = xp.oracle.next_epoch as i64;
        for (key, len) in &tr.direct {
            match xp.oracle.overlaps.get(key) {
                Some(list) if list.len() == *len => {}
                _ => return false,
            }
        }
        // Per append member: the field union of reducers the current
        // state accumulated beyond the captured prefix, and of the
        // captured entry reducers themselves — inputs to the per-consult
        // flip guards below.
        let mut delta_red = vec![0u64; tr.members.len()];
        let mut entry_red = vec![0u64; tr.members.len()];
        for (mi, m) in tr.members.iter().enumerate() {
            match m {
                TraceMember::Full { key, entry, .. } => {
                    match (xp.oracle.states.get(key), entry) {
                        (None, None) => {}
                        (Some(s), Some(ns)) => {
                            if normalize(s, tb, ob, eb) != *ns {
                                return false;
                            }
                        }
                        _ => return false,
                    }
                }
                TraceMember::Append { key, entry_existed, entry, .. } => {
                    // Absolute comparison: writes and open epochs
                    // exactly, captured readers and reducers as a
                    // prefix of the current lists, consumed field-union
                    // unchanged (the union is all any consult reads, and
                    // pre-window records all predate the threshold every
                    // window op filters on). Anything accumulated since
                    // capture is handled by delta edges at apply time.
                    let ok = match xp.oracle.states.get(key) {
                        Some(s) if *entry_existed => {
                            let (nr, nx) = (entry.readers.len(), entry.reducers.len());
                            let entry_union =
                                entry.consumed.iter().fold(0u64, |acc, &(_, m)| acc | m);
                            let cur_union = s.consumed.iter().fold(0u64, |acc, &(_, m)| acc | m);
                            let ok = s.writes == entry.writes
                                && s.epochs == entry.epochs
                                && s.readers.len() >= nr
                                && s.readers[..nr] == entry.readers[..]
                                && s.reducers.len() >= nx
                                && s.reducers[..nx] == entry.reducers[..]
                                && cur_union == entry_union;
                            if ok {
                                delta_red[mi] =
                                    s.reducers[nx..].iter().fold(0u64, |acc, r| acc | r.3);
                                entry_red[mi] =
                                    entry.reducers.iter().fold(0u64, |acc, r| acc | r.3);
                            }
                            ok
                        }
                        // No state at capture ⇒ no consultation of this
                        // space was recorded ⇒ replay is exact only if
                        // the state still looks consulted-empty.
                        Some(s) => {
                            s.writes.is_empty()
                                && s.readers.is_empty()
                                && s.reducers.is_empty()
                                && s.epochs.is_empty()
                                && s.consumed.is_empty()
                        }
                        None => !*entry_existed,
                    };
                    if !ok {
                        return false;
                    }
                }
            }
        }
        // Flip guards: a reducer accumulated since capture must not
        // change anything beyond the dependence edges apply() injects.
        // Two consult-level effects could: a fold copy the capture did
        // not record (or recorded from a source the delta would
        // preempt), and a write's consumption record whose push
        // condition the capture saw as false. Either flips observable
        // output, so the trace invalidates instead.
        for tt in &tr.tasks {
            for c in &tt.consults {
                let dm = delta_red[c.member as usize] & c.mask;
                if dm == 0 {
                    continue;
                }
                match c.privilege {
                    Privilege::Read | Privilege::ReadWrite => {
                        // A delta reducer with unconsumed shared bits
                        // would fold — only safe if the captured fold
                        // already came from a pre-window reducer, which
                        // the live scan iterates first.
                        if dm & !c.consumed != 0 && !c.fold_prefix {
                            return false;
                        }
                        if c.privilege == Privilege::ReadWrite && entry_red[c.member as usize] & c.mask == 0 {
                            return false;
                        }
                    }
                    Privilege::Write => {
                        // The consumption-record push keys on "any
                        // matching reducer": captured entry reducers
                        // already matching pins it true on both sides.
                        if entry_red[c.member as usize] & c.mask == 0 {
                            return false;
                        }
                    }
                    Privilege::Reduce(_) => {}
                }
            }
        }
        true
    }

    /// Splice the trace into the expansion at op `i`: push its tasks,
    /// edges, copies, verdicts, and distribution plans shifted to the
    /// current bases, write the captured exit states into the oracle,
    /// and advance the epoch counter — everything the skipped analyses
    /// would have produced.
    fn apply(&self, xp: &mut Expander<'_>, i: usize, tr: &LaunchTrace) {
        let tb = xp.tasks.len() as i64;
        let ob = i as i64;
        let eb = xp.oracle.next_epoch as i64;
        let task = |t: i64| -> TaskRef { u32::try_from(t + tb).expect("replayed task ref in range") };
        let epoch = |e: i64| -> u32 { u32::try_from(e + eb).expect("replayed epoch id in range") };
        let op = |o: i64| -> u32 { u32::try_from(o + ob).expect("replayed op index in range") };
        let refv = |r: Ref| -> TaskRef {
            match r {
                Ref::Rel(v) => task(v),
                Ref::Abs(t) => t,
            }
        };

        // Readers and reducers each append member accumulated since
        // capture, snapshotted before the tails below extend them: the
        // live scan would have given the window's tasks dependence
        // edges on every one of them.
        type Delta = (Vec<(TaskRef, u64)>, Vec<(ReductionOpId, TaskRef, usize, u64)>);
        let deltas: Vec<Option<Delta>> = tr
            .members
            .iter()
            .map(|m| match m {
                TraceMember::Append { key, entry, .. } => {
                    let (nr, nx) = (entry.readers.len(), entry.reducers.len());
                    let s = xp.oracle.states.get(key);
                    Some((
                        s.map(|s| s.readers[nr..].to_vec()).unwrap_or_default(),
                        s.map(|s| s.reducers[nx..].to_vec()).unwrap_or_default(),
                    ))
                }
                TraceMember::Full { .. } => None,
            })
            .collect();

        let s_tasks = std::time::Instant::now();
        let mut cursor = 0usize;
        for (o, top) in tr.ops.iter().enumerate() {
            let lo = xp.tasks.len() as u32;
            for tt in &tr.tasks[cursor..cursor + top.ntasks as usize] {
                xp.tasks.push(TaskInstance {
                    op: (i + o) as u32,
                    point_idx: tt.point_idx,
                    point: tt.point,
                    owner: tt.owner,
                    subspaces: tt.subspaces.clone(),
                    reduce_fill: tt
                        .reduce_fill
                        .iter()
                        .map(|fills| {
                            fills
                                .iter()
                                .map(|&(f, e)| {
                                    let id = match e {
                                        ERef::Rel(v) => epoch(v),
                                        ERef::Abs(id) => id,
                                    };
                                    (f, id)
                                })
                                .collect()
                        })
                        .collect(),
                });
                let mut deps: Vec<TaskRef> = tt.deps.iter().map(|&d| refv(d)).collect();
                // Delta edges: exactly what the live scan would add for
                // state accumulated since capture, per consult arm.
                for c in &tt.consults {
                    let Some((d_readers, d_reducers)) = &deltas[c.member as usize] else {
                        continue;
                    };
                    if !matches!(c.privilege, Privilege::Read) {
                        for &(r, rmask) in d_readers {
                            if rmask & c.mask != 0 {
                                deps.push(r);
                            }
                        }
                    }
                    for &(red_op, r, _, rmask) in d_reducers {
                        let wanted = match c.privilege {
                            Privilege::Reduce(op) => red_op != op,
                            _ => true,
                        };
                        if wanted && rmask & c.mask != 0 {
                            deps.push(r);
                        }
                    }
                }
                // The live scan sorts and deduplicates every task's dep
                // list; match it exactly (delta edges may duplicate
                // captured ones, and decoded refs must land in order).
                deps.sort_unstable();
                deps.dedup();
                xp.deps.push(deps);
                xp.copies.push(
                    tt.copies
                        .iter()
                        .map(|c| CopyIn {
                            from: refv(c.from),
                            src_space: c.src_space,
                            dst_req: c.dst_req,
                            tree: c.tree,
                            fields: c.fields.clone(),
                            bytes: c.bytes,
                            fold: c.fold,
                        })
                        .collect(),
                );
            }
            cursor += top.ntasks as usize;
            xp.op_tasks.push((lo, xp.tasks.len() as u32));
            xp.safety.push(top.safety.clone());
            xp.dist.push(OpDist {
                groups: top
                    .groups
                    .iter()
                    .map(|(n, ts)| (*n, ts.iter().map(|&t| task(t)).collect()))
                    .collect(),
                slices: top.slices.iter().map(|&(lo, hi, n)| (task(lo), task(hi), n)).collect(),
            });
            xp.replayed_ops.push(true);
        }

        // Splicing task instances is output materialization, not
        // analysis — charge it to the same profile bucket as the fresh
        // path's point loop so the two are comparable.
        xp.prof.materialize_ns += s_tasks.elapsed().as_nanos() as u64;
        for m in &tr.members {
            match m {
                TraceMember::Full { key, exit, .. } => {
                    if let Some(ns) = exit {
                        xp.oracle.states.insert(*key, denormalize(ns, tb, ob, eb));
                    }
                    // exit None ⇒ entry None ⇒ the state never existed
                    // during the window; the entry check guarantees it
                    // is absent now too.
                }
                TraceMember::Append {
                    key,
                    readers_tail,
                    reducers_tail,
                    epochs_tail,
                    consumed_clear,
                    consumed_tail,
                    ..
                } => {
                    // Reapply the window's accumulation on top of
                    // whatever has gathered since capture — exactly
                    // what the scan would do: clears hit every
                    // consumption record present (including the delta),
                    // then the window's own entries append.
                    let untouched = *consumed_clear == 0
                        && readers_tail.is_empty()
                        && reducers_tail.is_empty()
                        && epochs_tail.is_empty()
                        && consumed_tail.is_empty();
                    if untouched {
                        continue;
                    }
                    let st = xp.oracle.states.entry(*key).or_default();
                    if *consumed_clear != 0 {
                        for (_, m) in &mut st.consumed {
                            *m &= !consumed_clear;
                        }
                        st.consumed.retain(|(_, m)| *m != 0);
                    }
                    st.readers.extend(readers_tail.iter().map(|&(t, m)| (task(t), m)));
                    st.reducers
                        .extend(reducers_tail.iter().map(|&(o, t, rq, m)| (o, task(t), rq, m)));
                    st.epochs.extend(epochs_tail.iter().map(|&(o, bits, e)| (o, bits, epoch(e))));
                    st.consumed.extend(consumed_tail.iter().map(|&(o, m)| (op(o), m)));
                }
            }
        }
        xp.oracle.next_epoch += tr.epochs_opened;
    }
}

/// Per-op trace keys: [`launch_signature`] extended with the region tree
/// and field space of every requirement and the identity of the sharding
/// functor (interned to a small deterministic id; the raw pointer never
/// reaches the key). Two ops share a key only when every input the
/// expansion of that op reads is identical — so equal key windows imply
/// equal task shapes, subspaces, verdicts, and owners.
pub(crate) fn trace_keys(program: &Program) -> Vec<u64> {
    let mut intern: HashMap<usize, u64> = HashMap::new();
    program
        .ops
        .iter()
        .map(|op| {
            let launch = op.launch();
            let mut h = DefaultHasher::new();
            launch_signature(launch, program).hash(&mut h);
            let shard_id = match &launch.shard {
                None => 0u64,
                Some(f) => {
                    let ptr = sharding_identity(f);
                    let next = intern.len() as u64 + 1;
                    *intern.entry(ptr).or_insert(next)
                }
            };
            shard_id.hash(&mut h);
            for r in &launch.reqs {
                r.tree.hash(&mut h);
                r.field_space.hash(&mut h);
            }
            h.finish()
        })
        .collect()
}
