//! Silent-data-corruption defense: replication policies and counters.
//!
//! PR 5's faults all *announce themselves* — a crash stops answering, a
//! dropped message times out. Corruption doesn't: a flipped bit in a task
//! output propagates silently into every downstream consumer. Following
//! the selective-replication design of *Protecting Futures against Silent
//! Data Corruption* (see PAPERS.md), the defense executes selected tasks
//! on `k` nodes, digests each output ([`PhysicalInstance::digest`]
//! (il_region::PhysicalInstance::digest)), and commits a result only when
//! every replica's digest agrees; divergent votes quarantine the result
//! and re-run the task through the PR 5 retry path.
//!
//! Which tasks get replicated — and at what `k` — is a policy decision
//! with a real cost (k× execution plus digest/vote overhead, visible
//! under `Stage::Verify`). [`ReplicationPolicy`] is the trait; the
//! shipped implementations cover the none / flagged-ops /
//! criticality-threshold / all spectrum. [`ReplicationConfig`] is the
//! plain-data form carried in [`RuntimeConfig`](crate::RuntimeConfig)
//! (and per-tenant in `ServiceConfig`), turned into a policy object at
//! execution time.

use il_machine::SimTime;

/// Decides, per task, how many nodes execute it.
///
/// `replicas` returns the *total* number of executions including the
/// primary: 1 means no replication, `k >= 2` means `k - 1` extra replica
/// executions plus a digest vote before the result commits.
pub trait ReplicationPolicy {
    /// Short policy name for reports and CLIs.
    fn name(&self) -> &'static str;

    /// Total executions (primary included) for a task of operation `op`
    /// whose modeled execution cost is `task_cost`.
    fn replicas(&self, op: u32, task_cost: SimTime) -> usize;
}

/// Never replicate: every task runs once, corruption escapes undetected.
/// The explicit-off policy the negative-control tests run under.
pub struct NoReplication;

impl ReplicationPolicy for NoReplication {
    fn name(&self) -> &'static str {
        "none"
    }

    fn replicas(&self, _op: u32, _task_cost: SimTime) -> usize {
        1
    }
}

/// Replicate every task `k` ways: maximum protection, k× execution cost.
pub struct ReplicateAll {
    /// Total executions per task (clamped to at least 1).
    pub k: usize,
}

impl ReplicationPolicy for ReplicateAll {
    fn name(&self) -> &'static str {
        "all"
    }

    fn replicas(&self, _op: u32, _task_cost: SimTime) -> usize {
        self.k.max(1)
    }
}

/// Replicate only tasks of explicitly flagged operations — the
/// application knows which launches produce data it cannot afford to
/// lose silently.
pub struct FlaggedOps {
    /// Operation indices (issue order) whose tasks are replicated.
    pub ops: Vec<u32>,
    /// Total executions per flagged task.
    pub k: usize,
}

impl ReplicationPolicy for FlaggedOps {
    fn name(&self) -> &'static str {
        "flagged"
    }

    fn replicas(&self, op: u32, _task_cost: SimTime) -> usize {
        if self.ops.contains(&op) {
            self.k.max(1)
        } else {
            1
        }
    }
}

/// Cost-model-driven selection: replicate a task when its modeled
/// execution cost reaches `min_cost`. Expensive tasks are the ones whose
/// corrupted results poison the most downstream work per flipped bit;
/// cheap tasks are cheaper to lose and re-derive than to triple-run.
pub struct CriticalityThreshold {
    /// Minimum modeled task cost that triggers replication.
    pub min_cost: SimTime,
    /// Total executions per selected task.
    pub k: usize,
}

impl ReplicationPolicy for CriticalityThreshold {
    fn name(&self) -> &'static str {
        "critical"
    }

    fn replicas(&self, _op: u32, task_cost: SimTime) -> usize {
        if task_cost >= self.min_cost {
            self.k.max(1)
        } else {
            1
        }
    }
}

/// Plain-data replication policy selection, carried in configuration
/// (which must stay `Clone + Debug`) and resolved to a
/// [`ReplicationPolicy`] object when execution starts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReplicationConfig {
    /// [`NoReplication`].
    None,
    /// [`FlaggedOps`] over the listed operation indices.
    Flagged {
        /// Operation indices (issue order) to protect.
        ops: Vec<u32>,
        /// Total executions per flagged task.
        k: usize,
    },
    /// [`CriticalityThreshold`] at `min_cost`.
    Criticality {
        /// Minimum modeled task cost that triggers replication.
        min_cost: SimTime,
        /// Total executions per selected task.
        k: usize,
    },
    /// [`ReplicateAll`].
    All {
        /// Total executions per task.
        k: usize,
    },
}

impl ReplicationConfig {
    /// Replicate every task `k` ways.
    pub fn all(k: usize) -> Self {
        ReplicationConfig::All { k }
    }

    /// Replicate tasks whose modeled cost reaches `min_cost`, `k` ways.
    pub fn critical(min_cost: SimTime, k: usize) -> Self {
        ReplicationConfig::Criticality { min_cost, k }
    }

    /// Replicate tasks of the flagged operations, `k` ways.
    pub fn flagged(ops: Vec<u32>, k: usize) -> Self {
        ReplicationConfig::Flagged { ops, k }
    }

    /// Whether this configuration can ever replicate a task.
    pub fn is_active(&self) -> bool {
        match self {
            ReplicationConfig::None => false,
            ReplicationConfig::Flagged { ops, k } => !ops.is_empty() && *k >= 2,
            ReplicationConfig::Criticality { k, .. } => *k >= 2,
            ReplicationConfig::All { k } => *k >= 2,
        }
    }

    /// Build the policy object this configuration describes.
    pub fn policy(&self) -> Box<dyn ReplicationPolicy> {
        match self {
            ReplicationConfig::None => Box::new(NoReplication),
            ReplicationConfig::Flagged { ops, k } => {
                Box::new(FlaggedOps { ops: ops.clone(), k: *k })
            }
            ReplicationConfig::Criticality { min_cost, k } => {
                Box::new(CriticalityThreshold { min_cost: *min_cost, k: *k })
            }
            ReplicationConfig::All { k } => Box::new(ReplicateAll { k: *k }),
        }
    }
}

/// Counters of silent-data-corruption activity and defense during a run,
/// reported in [`RunReport::sdc`](crate::RunReport::sdc).
///
/// Like the host-side cache counters, these are deliberately excluded
/// from `stage_json`, so a defense-off run's observable report stays
/// byte-identical whether or not the subsystem exists.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SdcStats {
    /// Tasks the policy selected for replicated execution (k >= 2).
    pub replicated_tasks: u64,
    /// Extra (non-primary) replica executions performed.
    pub replicas: u64,
    /// Divergent digest votes: corruption detected before commit.
    pub detected: u64,
    /// Results quarantined after a divergent vote (never committed).
    pub quarantined: u64,
    /// Re-executions triggered by quarantined results.
    pub reruns: u64,
    /// Corrupted task outputs that committed unverified (k = 1) — the
    /// damage the defense exists to prevent. Zero whenever replication
    /// covers the corrupted tasks.
    pub escaped: u64,
    /// Corrupted message payloads detected at the receiver (defense on)
    /// and re-delivered clean.
    pub payload_detected: u64,
    /// Corrupted message payloads accepted by the receiver (defense off).
    pub payload_escaped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_select_as_documented() {
        assert_eq!(NoReplication.replicas(0, SimTime::ms(1)), 1);
        assert_eq!(ReplicateAll { k: 3 }.replicas(7, SimTime::ZERO), 3);
        assert_eq!(ReplicateAll { k: 0 }.replicas(7, SimTime::ZERO), 1);
        let flagged = FlaggedOps { ops: vec![2, 5], k: 2 };
        assert_eq!(flagged.replicas(2, SimTime::ZERO), 2);
        assert_eq!(flagged.replicas(3, SimTime::ZERO), 1);
        let crit = CriticalityThreshold { min_cost: SimTime::us(100), k: 3 };
        assert_eq!(crit.replicas(0, SimTime::us(99)), 1);
        assert_eq!(crit.replicas(0, SimTime::us(100)), 3);
    }

    #[test]
    fn config_resolves_to_matching_policies() {
        for (cfg, name) in [
            (ReplicationConfig::None, "none"),
            (ReplicationConfig::flagged(vec![1], 2), "flagged"),
            (ReplicationConfig::critical(SimTime::us(10), 2), "critical"),
            (ReplicationConfig::all(3), "all"),
        ] {
            assert_eq!(cfg.policy().name(), name);
        }
        assert!(!ReplicationConfig::None.is_active());
        assert!(!ReplicationConfig::all(1).is_active());
        assert!(!ReplicationConfig::flagged(vec![], 2).is_active());
        assert!(ReplicationConfig::all(2).is_active());
        assert!(ReplicationConfig::critical(SimTime::ZERO, 2).is_active());
    }
}
