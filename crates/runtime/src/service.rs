//! Multi-tenant service mode: a persistent scheduler over one shared
//! simulated machine.
//!
//! The paper's runtime executes one program and exits. Real Legion-style
//! deployments run as a *service*: tenants submit launch programs over
//! time, the runtime admits them onto the machine, and scheduling policy
//! decides who waits. This module adds that layer without touching the
//! per-program executor semantics:
//!
//! * The machine is space-shared into `slots` slots of `slot_nodes`
//!   nodes each. A session owns its slot's node range exclusively from
//!   admission to completion, so sessions never share a node clock and
//!   the flat α–β network charges no cross-traffic contention — each
//!   session's *relative* event schedule is identical to a solo run.
//! * Sessions are [`SessionSpec`]s (tenant, priority, arrival time,
//!   program, per-session [`RuntimeConfig`]). A bounded pending queue
//!   ([`ServiceConfig::queue_cap`]) provides backpressure: arrivals that
//!   find the queue full are rejected, never silently dropped.
//! * A [`SchedulingPolicy`] picks which pending session gets a free slot
//!   at each admission round. Three built-ins: [`Fifo`] (arrival order),
//!   [`FairShare`] (least accumulated per-tenant service time), and
//!   [`AgedPriority`] (static priority plus one aging credit per round
//!   waited, so low-priority sessions cannot starve).
//! * Per-tenant warm state: a tenant resubmitting the same program shape
//!   reuses its analysis-cache verdicts and captured launch traces
//!   ([`crate::depgraph::WarmState`]), keyed by `(tenant, program
//!   fingerprint)` so tenants are isolated from each other. Warm state
//!   only affects host-side expansion statistics — never simulated time
//!   or results.
//!
//! **Transparency at n=1.** A service with one slot, one pending
//! session, and a fault config equal to the session's own produces a
//! [`RunReport`] byte-identical to [`crate::execute`]: same machine
//! size, same fault plan (the per-slot-base exemption is a no-op at
//! width 1 because plans never fault node 0), same injection order, and
//! the same [`finish_report`] tail. The service-mode test tier locks
//! this equivalence across the safety matrix and an oracle-corpus slice.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

use il_machine::{
    FaultCounters, FaultPlan, LaneStats, MachineDesc, Network, NodeId, SimTime, Stage, StageTotals,
    StageTraffic, Simulator,
};

use crate::config::{FaultConfig, RuntimeConfig};
use crate::depgraph::{expand_program_warm, launch_signature, WarmState};
use crate::exec::{
    build_shared, event_budget, finish_report, inject_session, FaultRuntime, Msg, RtNode,
    RunReport, Shared, SimAggregates,
};
use crate::program::Program;
use crate::sdc::ReplicationConfig;

/// One session submitted to the service: a launch program plus the
/// tenant it belongs to, its static priority, and its arrival time on
/// the shared machine clock.
pub struct SessionSpec {
    /// Owning tenant (warm state and fair-share accounting key).
    pub tenant: u32,
    /// Static priority (higher = more urgent; only [`AgedPriority`]
    /// reads it).
    pub priority: u32,
    /// Arrival time on the machine clock.
    pub arrival: SimTime,
    /// The launch program to execute. `Rc` so a tenant can resubmit the
    /// same program across sessions (which is what makes warm state
    /// meaningful) without cloning the program body.
    pub program: Rc<Program>,
    /// Per-session runtime configuration. `config.nodes` must equal the
    /// service's slot width and `net_hierarchy` must be `None` (the
    /// shared machine has one interconnect).
    pub config: RuntimeConfig,
}

/// Static shape of the service's machine and queue.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Number of slots (sessions that can run concurrently).
    pub slots: usize,
    /// Nodes per slot; every session's `config.nodes` must equal this.
    pub slot_nodes: usize,
    /// Pending-queue capacity. Arrivals beyond this are rejected
    /// (backpressure), recorded in [`ServiceReport::rejected`].
    pub queue_cap: usize,
    /// Machine-wide fault configuration. The plan is generated over the
    /// whole machine with per-slot base nodes exempted (each session
    /// keeps a live recovery coordinator, mirroring the single-machine
    /// invariant that node 0 never crashes — and, since PR 9, that slot
    /// bases never corrupt either). For n=1 transparency pass the same
    /// config the session itself carries.
    pub faults: Option<FaultConfig>,
    /// Per-tenant SDC replication overrides, `(tenant, policy)`: at
    /// admission, a session whose tenant appears here runs under that
    /// replication policy instead of whatever its own config carries.
    /// This is how operators sell "verified execution" as a per-tenant
    /// service tier without tenants editing their programs. Tenants not
    /// listed keep their submitted config untouched.
    pub replication_overrides: Vec<(u32, ReplicationConfig)>,
}

/// A pending session as shown to a [`SchedulingPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct PendingView {
    /// Index into the submission slice.
    pub submit_idx: usize,
    /// Owning tenant.
    pub tenant: u32,
    /// Static priority.
    pub priority: u32,
    /// Arrival time.
    pub arrival: SimTime,
    /// Completed admission rounds this session has sat out.
    pub waited_rounds: u64,
}

/// Admission-order policy: given the pending queue (arrival order) and
/// the current machine time, pick the index of the next session to admit
/// to a free slot, or `None` to leave the slot idle this round.
///
/// The policy only ever reorders *admission*; it cannot change what any
/// session computes. Per-session reports are `t0`-relative and sessions
/// are node-disjoint, so computed data is policy-independent by
/// construction (locked by the scheduler-equivalence tests).
pub trait SchedulingPolicy {
    /// Human-readable policy name (report and bench labels).
    fn name(&self) -> &'static str;
    /// Pick an index into `pending`, or `None` to hold the slot.
    fn pick(&mut self, pending: &[PendingView], now: SimTime) -> Option<usize>;
    /// Hook: `session` was admitted at `now`.
    fn on_admit(&mut self, _tenant: u32, _now: SimTime) {}
    /// Hook: a session of `tenant` finished, having occupied its slot
    /// for `service_time`.
    fn on_complete(&mut self, _tenant: u32, _service_time: SimTime) {}
}

/// First-come, first-served: always admit the earliest arrival (the
/// pending queue is kept in arrival order, submission order on ties).
#[derive(Default)]
pub struct Fifo;

impl SchedulingPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick(&mut self, pending: &[PendingView], _now: SimTime) -> Option<usize> {
        if pending.is_empty() {
            None
        } else {
            Some(0)
        }
    }
}

/// Fair share by tenant: admit the pending session whose tenant has the
/// least accumulated service time (sum of completed sessions' slot
/// occupancy), breaking ties by arrival then submission order. A tenant
/// that monopolized the machine early accrues debt and yields to light
/// tenants, which is what caps tail latency under skewed mixes.
#[derive(Default)]
pub struct FairShare {
    used: HashMap<u32, u64>,
}

impl SchedulingPolicy for FairShare {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn pick(&mut self, pending: &[PendingView], _now: SimTime) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| {
                (
                    self.used.get(&p.tenant).copied().unwrap_or(0),
                    p.arrival,
                    p.submit_idx,
                )
            })
            .map(|(i, _)| i)
    }

    fn on_complete(&mut self, tenant: u32, service_time: SimTime) {
        *self.used.entry(tenant).or_insert(0) += service_time.0;
    }
}

/// Strict priority with aging: admit the pending session with the
/// highest `priority + waited_rounds`, ties broken by arrival then
/// submission order. Every round a session sits out adds one credit, so
/// any fixed priority gap closes in finitely many rounds — no
/// starvation (locked by the scheduler property tests).
#[derive(Default)]
pub struct AgedPriority;

impl SchedulingPolicy for AgedPriority {
    fn name(&self) -> &'static str {
        "aged-priority"
    }

    fn pick(&mut self, pending: &[PendingView], _now: SimTime) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| {
                (
                    p.priority as u64 + p.waited_rounds,
                    std::cmp::Reverse(p.arrival),
                    std::cmp::Reverse(p.submit_idx),
                )
            })
            .map(|(i, _)| i)
    }
}

/// Construct the built-in policy named `name` (`fifo`, `fair`,
/// `aged-priority`). Panics on an unknown name — callers surface the
/// valid set in their own usage text.
pub fn policy_by_name(name: &str) -> Box<dyn SchedulingPolicy> {
    match name {
        "fifo" => Box::new(Fifo),
        "fair" => Box::new(FairShare::default()),
        "aged-priority" => Box::new(AgedPriority),
        other => panic!("unknown scheduling policy `{other}` (fifo, fair, aged-priority)"),
    }
}

/// Outcome of one admitted session.
pub struct SessionReport {
    /// Index into the submission slice.
    pub submit_idx: usize,
    /// Owning tenant.
    pub tenant: u32,
    /// Static priority.
    pub priority: u32,
    /// Arrival time on the machine clock.
    pub arrival: SimTime,
    /// Admission time (the session's `t0`).
    pub admitted: SimTime,
    /// Completion time (`admitted + report.makespan`).
    pub finished: SimTime,
    /// Slot the session ran in.
    pub slot: usize,
    /// Admission rounds the session waited in the pending queue.
    pub wait_rounds: u64,
    /// The session's run report — byte-identical to what a solo
    /// [`crate::execute`] of the same program produces (fault-free), all
    /// times relative to `admitted`.
    pub report: RunReport,
}

impl SessionReport {
    /// End-to-end latency: completion minus arrival (queue wait plus
    /// service time).
    pub fn latency(&self) -> SimTime {
        self.finished.saturating_sub(self.arrival)
    }
}

/// Outcome of one [`Service::run`]: per-session reports (submission
/// order), rejected submissions, and whole-service aggregates.
pub struct ServiceReport {
    /// Reports of every admitted-and-finished session, in submission
    /// order.
    pub sessions: Vec<SessionReport>,
    /// Submission indices rejected by queue backpressure.
    pub rejected: Vec<usize>,
    /// Name of the scheduling policy that ran the service.
    pub policy: String,
    /// Machine time at which the last session finished.
    pub makespan: SimTime,
    /// Admission rounds executed.
    pub rounds: u64,
}

/// A session occupying a slot: its shared state plus the lane/clock
/// snapshots taken at admission, from which completion-time deltas
/// reconstruct solo-run aggregates.
struct Active<'p> {
    submit_idx: usize,
    tenant: u32,
    priority: u32,
    arrival: SimTime,
    shared: Rc<Shared<'p>>,
    admitted: SimTime,
    wait_rounds: u64,
    /// Lane counters at admission (lane stats are cumulative across the
    /// sessions a slot hosts; the session's own traffic is the delta).
    lane0: LaneStats,
    /// Per-node stage clocks at admission, indexed by local node id.
    stage0: Vec<StageTotals>,
}

/// Fingerprint of a program's launch shapes, keying per-tenant warm
/// state: two submissions warm each other only if every op's full
/// analysis-relevant signature matches, in order.
fn program_fingerprint(program: &Program) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    program.ops.len().hash(&mut h);
    for op in &program.ops {
        launch_signature(op.launch(), program).hash(&mut h);
    }
    h.finish()
}

/// The persistent service: machine shape, scheduling policy, and
/// per-tenant warm state that survives across sessions (and across
/// [`Service::run`] calls).
pub struct Service {
    cfg: ServiceConfig,
    policy: Box<dyn SchedulingPolicy>,
    /// Warm analysis state keyed by `(tenant, program fingerprint)`.
    /// Tenants never observe each other's entries — the per-tenant
    /// isolation regression locks this.
    warm: HashMap<(u32, u64), WarmState>,
}

impl Service {
    /// Create a service with the given machine shape and policy.
    pub fn new(cfg: ServiceConfig, policy: Box<dyn SchedulingPolicy>) -> Service {
        assert!(cfg.slots >= 1, "service needs at least one slot");
        assert!(cfg.slot_nodes >= 1, "slots need at least one node");
        assert!(cfg.queue_cap >= 1, "queue capacity must be positive");
        Service { cfg, policy, warm: HashMap::new() }
    }

    /// Warm entries currently held for `tenant` (observability for the
    /// isolation tests).
    pub fn warm_entries(&self, tenant: u32) -> usize {
        self.warm.keys().filter(|(t, _)| *t == tenant).count()
    }

    /// Run the service over a batch of submissions. Arrivals are
    /// processed in `(arrival, submission index)` order; the call
    /// returns when every admitted session has finished. Warm state
    /// persists on `self` for subsequent batches.
    pub fn run(&mut self, sessions: &[SessionSpec]) -> ServiceReport {
        let slots = self.cfg.slots;
        let slot_nodes = self.cfg.slot_nodes;
        let total = slots * slot_nodes;
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(
                s.config.nodes, slot_nodes,
                "session {i}: config.nodes must equal the service slot width"
            );
            assert!(
                s.config.net_hierarchy.is_none(),
                "session {i}: per-session interconnects are not supported in service mode"
            );
        }

        let mut order: Vec<usize> = (0..sessions.len()).collect();
        order.sort_by_key(|&i| (sessions[i].arrival, i));

        let behaviors: Vec<RtNode<'_>> = (0..total).map(|_| RtNode::unbound()).collect();
        let mut sim = Simulator::new(MachineDesc::piz_daint(total), Network::aries(), behaviors);
        sim.enable_lanes((0..total).map(|n| (n / slot_nodes) as u32).collect(), slots);
        let plan = self.cfg.faults.as_ref().map(|fc| {
            FaultPlan::generate(fc.seed, total, &fc.to_spec())
                .with_exempt_nodes(|n| n % slot_nodes == 0)
        });
        if let Some(p) = &plan {
            sim.set_fault_plan(p.clone());
        }

        let slot_ready = |sim: &Simulator<Msg, RtNode<'_>>, slot: usize| -> SimTime {
            (slot * slot_nodes..(slot + 1) * slot_nodes)
                .map(|n| sim.node_busy_until(n))
                .max()
                .unwrap_or(SimTime::ZERO)
        };

        // Pending queue in arrival order: `(submission index, rounds waited)`.
        let mut pending: Vec<(usize, u64)> = Vec::new();
        let mut active: Vec<Option<Active<'_>>> = (0..slots).map(|_| None).collect();
        let mut done: Vec<Option<SessionReport>> = (0..sessions.len()).map(|_| None).collect();
        let mut rejected: Vec<usize> = Vec::new();
        let mut next_arr = 0usize;
        let mut rounds = 0u64;
        let mut now = SimTime::ZERO;
        // Runaway guard: accumulated per-admission budgets, floored by
        // the machine-sized cap exactly like the single-program path.
        let mut budget: u64 = 0;
        let mut dispatched: u64 = 0;
        let floor = sim.default_event_cap();

        loop {
            // 1. Ingest arrivals due at or before `now`; reject on a
            //    full queue (backpressure).
            while next_arr < order.len() && sessions[order[next_arr]].arrival <= now {
                let i = order[next_arr];
                next_arr += 1;
                if pending.len() >= self.cfg.queue_cap {
                    rejected.push(i);
                } else {
                    pending.push((i, 0));
                }
            }

            // 2. Finalize drained slots: a lane with zero outstanding
            //    events has nothing left in flight or queued.
            for s in 0..slots {
                if active[s].is_some() && sim.lane_outstanding(s) == 0 {
                    let a = active[s].take().unwrap();
                    let rep = finalize_session(&mut sim, plan.as_ref(), a, s, slot_nodes);
                    self.policy.on_complete(rep.tenant, rep.report.makespan);
                    let idx = rep.submit_idx;
                    done[idx] = Some(rep);
                }
            }

            // 3. Admission round: offer every currently-ready free slot
            //    to the policy.
            if !pending.is_empty() {
                let mut admitted_any = false;
                loop {
                    if pending.is_empty() {
                        break;
                    }
                    let Some(s) = (0..slots)
                        .find(|&s| active[s].is_none() && slot_ready(&sim, s) <= now)
                    else {
                        break;
                    };
                    let views: Vec<PendingView> = pending
                        .iter()
                        .map(|&(i, waited)| PendingView {
                            submit_idx: i,
                            tenant: sessions[i].tenant,
                            priority: sessions[i].priority,
                            arrival: sessions[i].arrival,
                            waited_rounds: waited,
                        })
                        .collect();
                    let Some(k) = self.policy.pick(&views, now) else { break };
                    let (i, waited) = pending.remove(k);
                    let spec = &sessions[i];
                    self.policy.on_admit(spec.tenant, now);
                    admitted_any = true;

                    // Admit session `i` on slot `s` at `t0 = now`,
                    // applying the tenant's replication tier (if any)
                    // over its submitted config.
                    let base = s * slot_nodes;
                    let mut session_cfg = spec.config.clone();
                    if let Some((_, r)) = self
                        .cfg
                        .replication_overrides
                        .iter()
                        .find(|(t, _)| *t == spec.tenant)
                    {
                        session_cfg.replication = Some(r.clone());
                    }
                    let warm = self
                        .warm
                        .entry((spec.tenant, program_fingerprint(&spec.program)))
                        .or_default();
                    let expanded = expand_program_warm(&spec.program, &session_cfg, Some(warm));
                    let total_tasks = expanded.len() as u64;
                    let faults = self.cfg.faults.as_ref().map(|fc| {
                        FaultRuntime::new(
                            fc.clone(),
                            plan.clone().expect("plan exists when faults configured"),
                            expanded.len(),
                        )
                    });
                    budget = budget.saturating_add(event_budget(
                        total_tasks,
                        spec.program.ops.len(),
                        slot_nodes,
                        faults.is_some(),
                    ));
                    let shared =
                        build_shared(&spec.program, &session_cfg, base, now, expanded, faults);
                    for n in base..base + slot_nodes {
                        sim.node_mut(n).bind(shared.clone());
                    }
                    inject_session(&mut sim, &shared, now);
                    active[s] = Some(Active {
                        submit_idx: i,
                        tenant: spec.tenant,
                        priority: spec.priority,
                        arrival: spec.arrival,
                        shared,
                        admitted: now,
                        wait_rounds: waited,
                        lane0: sim.lane_stats(s),
                        stage0: (base..base + slot_nodes)
                            .map(|n| sim.node_stage(n))
                            .collect(),
                    });
                }
                if admitted_any {
                    rounds += 1;
                    for p in &mut pending {
                        p.1 += 1;
                    }
                }
            }

            // 4. Advance: the next instant is the earliest of the event
            //    queue, the next arrival, and (when sessions wait) the
            //    next free slot becoming ready.
            let t_event = sim.peek_time();
            let t_arr = if next_arr < order.len() {
                Some(sessions[order[next_arr]].arrival)
            } else {
                None
            };
            let t_slot = if pending.is_empty() {
                None
            } else {
                (0..slots)
                    .filter(|&s| active[s].is_none())
                    .map(|s| slot_ready(&sim, s))
                    .filter(|&t| t > now)
                    .min()
            };
            let next = [t_event, t_arr, t_slot].into_iter().flatten().min();
            match next {
                Some(t) if t_event == Some(t) => {
                    // Events first on ties: injected work at `t` must run
                    // before `t`-time admissions enqueue behind it.
                    match sim.try_step() {
                        Ok(true) => {
                            dispatched += 1;
                            assert!(
                                dispatched <= budget.max(floor),
                                "service event budget exceeded: {dispatched} events \
                                 (protocol runaway)"
                            );
                            now = now.max(sim.now());
                        }
                        Ok(false) => unreachable!("peeked event vanished"),
                        Err(err) => panic!("{err}"),
                    }
                }
                Some(t) => now = t,
                None => {
                    assert!(
                        pending.is_empty(),
                        "scheduling stalled: policy `{}` held {} pending session(s) \
                         with free slots and an idle machine",
                        self.policy.name(),
                        pending.len()
                    );
                    break;
                }
            }
        }

        // Drain check once more: the loop exits when the event queue is
        // empty, which can leave the final sessions' lanes drained but
        // unfinalized.
        for s in 0..slots {
            if let Some(a) = active[s].take() {
                assert_eq!(sim.lane_outstanding(s), 0, "service ended with slot {s} busy");
                let rep = finalize_session(&mut sim, plan.as_ref(), a, s, slot_nodes);
                self.policy.on_complete(rep.tenant, rep.report.makespan);
                let idx = rep.submit_idx;
                done[idx] = Some(rep);
            }
        }

        let sessions_out: Vec<SessionReport> = done.into_iter().flatten().collect();
        let makespan = sessions_out
            .iter()
            .map(|r| r.finished)
            .max()
            .unwrap_or(SimTime::ZERO);
        ServiceReport {
            sessions: sessions_out,
            rejected,
            policy: self.policy.name().to_string(),
            makespan,
            rounds,
        }
    }
}

/// Unbind a finished session's nodes and reconstruct its solo-run
/// aggregates from lane and node-clock deltas against the admission
/// snapshots (slot counters are cumulative across the sessions a slot
/// hosts). All times come out relative to the session's `t0`, which is
/// exactly the [`SimAggregates`] contract [`finish_report`] expects.
fn finalize_session<'p>(
    sim: &mut Simulator<Msg, RtNode<'p>>,
    plan: Option<&FaultPlan>,
    a: Active<'p>,
    slot: usize,
    slot_nodes: usize,
) -> SessionReport {
    let base = slot * slot_nodes;
    for n in base..base + slot_nodes {
        sim.node_mut(n).unbind();
    }
    let lane1 = sim.lane_stats(slot);
    let t0 = a.admitted;

    // Session makespan: latest crash-clamped busy instant of its nodes,
    // relative to t0. A node crashed in an earlier epoch clamps to zero
    // contribution, matching the solo simulator's crash clamp.
    let mut makespan = SimTime::ZERO;
    let mut stage_busy = StageTotals::default();
    let mut node_stage_busy: Vec<(NodeId, StageTotals)> = Vec::new();
    for (local, n) in (base..base + slot_nodes).enumerate() {
        let mut busy = sim.node_busy_until(n);
        if let Some(ct) = plan.and_then(|p| p.crash_time(n)) {
            busy = busy.min(ct);
        }
        makespan = makespan.max(busy.saturating_sub(t0));

        let cur = sim.node_stage(n);
        let mut row = StageTotals::default();
        for stage in Stage::ALL {
            let d = cur.get(stage).saturating_sub(a.stage0[local].get(stage));
            if d != SimTime::ZERO {
                row.add(stage, d);
            }
        }
        stage_busy.merge(&row);
        if row.sum() != SimTime::ZERO {
            node_stage_busy.push((local, row));
        }
    }

    let mut traffic = StageTraffic::default();
    for i in 0..Stage::COUNT {
        traffic.messages[i] = lane1.traffic.messages[i] - a.lane0.traffic.messages[i];
        traffic.bytes[i] = lane1.traffic.bytes[i] - a.lane0.traffic.bytes[i];
    }
    let agg = SimAggregates {
        makespan,
        messages: lane1.messages - a.lane0.messages,
        bytes: lane1.bytes - a.lane0.bytes,
        traffic,
        fault_counters: FaultCounters {
            dropped: lane1.faults.dropped - a.lane0.faults.dropped,
            duplicated: lane1.faults.duplicated - a.lane0.faults.duplicated,
            crash_dropped: lane1.faults.crash_dropped - a.lane0.faults.crash_dropped,
        },
        stage_busy,
        node_stage_busy,
    };

    let Active { submit_idx, tenant, priority, arrival, shared, admitted, wait_rounds, .. } = a;
    let shared = Rc::try_unwrap(shared)
        .unwrap_or_else(|_| panic!("simulator retained shared state after unbind"));
    let report = finish_report(shared, agg);
    SessionReport {
        submit_idx,
        tenant,
        priority,
        arrival,
        admitted,
        finished: admitted + report.makespan,
        slot,
        wait_rounds,
        report,
    }
}
