//! Sharding and slicing functors.
//!
//! Distribution (§5) is under user control: with DCR a **sharding
//! functor** maps each launch-domain point to the node that owns it —
//! a pure function, evaluated locally on every node with no
//! communication; without DCR a **slicing functor** recursively splits
//! the domain so fixed-size slice descriptors can travel a broadcast
//! tree.

use il_geometry::{Domain, DomainPoint};
use il_machine::NodeId;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::sync::Arc;

/// A launch domain handed to a sharding functor, with a lazily built
/// point→rank index for sparse domains.
///
/// Sharding functors are evaluated once per domain point during
/// expansion. The old functor signature passed a bare [`Domain`], so any
/// functor needing a point's iteration-order position (both built-ins do)
/// paid [`position_in_domain`]'s O(|D|) sparse scan *per point* — making
/// sparse launches O(|D|²). `ShardDomain` amortizes that: the first
/// sparse rank query builds a `HashMap` rank index in O(|D|), and every
/// subsequent query is O(1). Dense domains linearize in O(1) as before.
pub struct ShardDomain<'a> {
    domain: &'a Domain,
    rank: OnceCell<HashMap<DomainPoint, u64>>,
}

impl<'a> ShardDomain<'a> {
    /// Wrap `domain`. Cheap: the sparse rank index is built on first use.
    pub fn new(domain: &'a Domain) -> Self {
        ShardDomain { domain, rank: OnceCell::new() }
    }

    /// The underlying launch domain.
    pub fn domain(&self) -> &'a Domain {
        self.domain
    }

    /// Number of points in the domain.
    pub fn volume(&self) -> u64 {
        self.domain.volume()
    }

    /// Position of `p` in the iteration order of the domain — the same
    /// value as [`position_in_domain`], in O(1) amortized time.
    ///
    /// # Panics
    /// Panics if `p` is not in the domain.
    pub fn position(&self, p: DomainPoint) -> u64 {
        match self.domain {
            Domain::Sparse { points, .. } => {
                let rank = self.rank.get_or_init(|| {
                    let mut map = HashMap::with_capacity(points.len());
                    // `Domain::sparse` rejects duplicate points, so every
                    // insert is fresh and ranks match the linear scan.
                    for (i, &q) in points.iter().enumerate() {
                        map.insert(q, i as u64);
                    }
                    map
                });
                *rank
                    .get(&p)
                    .unwrap_or_else(|| panic!("point {p:?} not in sparse domain"))
            }
            dense => dense
                .linearize(p)
                .unwrap_or_else(|| panic!("point {p:?} not in domain {dense:?}")),
        }
    }
}

/// A sharding functor: `(point, domain, nodes) → owner node`.
///
/// Must be pure (Legion memoizes them, §5) and total over the domain.
/// The domain arrives wrapped in a [`ShardDomain`] so rank queries on
/// sparse domains are O(1) amortized rather than O(|D|) per point.
pub type ShardingFn = Arc<dyn Fn(DomainPoint, &ShardDomain<'_>, usize) -> NodeId + Send + Sync>;

/// Block sharding: contiguous runs of the domain's iteration order map to
/// the same node. With |D| = k·N, each node owns k consecutive points —
/// the common case in the paper's applications where the partition size
/// equals (a small multiple of) the node count.
pub fn block_shard() -> ShardingFn {
    Arc::new(|p: DomainPoint, domain: &ShardDomain<'_>, nodes: usize| {
        let volume = domain.volume().max(1);
        let idx = domain.position(p);
        ((idx as u128 * nodes as u128) / volume as u128) as NodeId
    })
}

/// Round-robin sharding: point `i` goes to node `i mod N`.
pub fn round_robin_shard() -> ShardingFn {
    Arc::new(|p: DomainPoint, domain: &ShardDomain<'_>, nodes: usize| {
        (domain.position(p) % nodes as u64) as NodeId
    })
}

/// Stable identity of a sharding functor for trace keying: the address
/// of the closure behind the `Arc`. Two clones of the same `Arc` compare
/// equal; distinct functors (even with identical behavior) compare
/// different, which errs on the side of invalidation — a trace is never
/// replayed across a functor swap. The program holds its `Arc`s alive
/// for the whole run, so addresses cannot be recycled mid-expansion.
pub fn sharding_identity(f: &ShardingFn) -> usize {
    Arc::as_ptr(f) as *const () as usize
}

/// Position of `p` in the iteration order of `domain`.
///
/// Dense domains use row-major linearization (O(1)); sparse domains use
/// the point's rank in the list — O(|D|) per call. Callers iterating a
/// whole domain should go through [`ShardDomain::position`], which
/// precomputes the sparse rank index once.
pub fn position_in_domain(p: DomainPoint, domain: &Domain) -> u64 {
    match domain {
        Domain::Sparse { points, .. } => points
            .iter()
            .position(|q| *q == p)
            .unwrap_or_else(|| panic!("point {p:?} not in sparse domain")) as u64,
        dense => dense
            .linearize(p)
            .unwrap_or_else(|| panic!("point {p:?} not in domain {dense:?}")),
    }
}

/// The point at iteration-order position `idx` of `domain`.
pub fn point_at(domain: &Domain, idx: u64) -> DomainPoint {
    match domain {
        Domain::Sparse { points, .. } => points[idx as usize],
        Domain::Rect1(r) => r.delinearize(idx).expect("index in range").into(),
        Domain::Rect2(r) => r.delinearize(idx).expect("index in range").into(),
        Domain::Rect3(r) => r.delinearize(idx).expect("index in range").into(),
    }
}

/// Slice `domain` over `nodes` nodes into iteration-order index ranges
/// `(lo, hi, owner)` (inclusive), exactly consistent with
/// [`block_shard`]: range `i` holds every point whose block-shard owner
/// is `i`. A slice descriptor is fixed-size regardless of how many tasks
/// it represents — the O(1) representation the non-DCR distribution
/// ships around the broadcast tree (§5).
pub fn block_slices(domain: &Domain, nodes: usize) -> Vec<(u64, u64, NodeId)> {
    let volume = domain.volume();
    if volume == 0 {
        return vec![];
    }
    let n = nodes as u128;
    let v = volume as u128;
    let mut out = Vec::new();
    for i in 0..nodes as u128 {
        // owner(idx) = floor(idx·N/V) = i  ⇔  idx ∈ [⌈iV/N⌉, ⌈(i+1)V/N⌉-1]
        let lo = (i * v).div_ceil(n);
        let hi = ((i + 1) * v).div_ceil(n);
        if hi > lo {
            out.push((lo as u64, hi as u64 - 1, i as NodeId));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;

    #[test]
    fn block_shard_balanced_1d() {
        let shard = block_shard();
        let d = Domain::range(8);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &ShardDomain::new(&d), 4)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn block_shard_overdecomposed() {
        let shard = block_shard();
        let d = Domain::range(8);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &ShardDomain::new(&d), 2)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn block_shard_fewer_points_than_nodes() {
        let shard = block_shard();
        let d = Domain::range(3);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &ShardDomain::new(&d), 8)).collect();
        // Spread across the machine, each point on its own node.
        assert_eq!(owners.len(), 3);
        let mut sorted = owners.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "points must go to distinct nodes: {owners:?}");
    }

    #[test]
    fn round_robin() {
        let shard = round_robin_shard();
        let d = Domain::range(6);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &ShardDomain::new(&d), 4)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn sharding_2d_covers_all_nodes() {
        let shard = block_shard();
        let d: Domain = Rect::new2((0, 0), (3, 3)).into();
        let mut owners: Vec<NodeId> = d.iter().map(|p| shard(p, &ShardDomain::new(&d), 4)).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparse_position() {
        let d = Domain::sparse(vec![
            DomainPoint::new3(0, 0, 1),
            DomainPoint::new3(0, 1, 0),
            DomainPoint::new3(1, 0, 0),
        ]);
        assert_eq!(position_in_domain(DomainPoint::new3(1, 0, 0), &d), 2);
    }

    #[test]
    fn slices_agree_with_block_shard() {
        let shard = block_shard();
        for volume in [3i64, 10, 16, 17] {
            let d = Domain::range(volume);
            for nodes in [1usize, 2, 3, 4, 8, 16, 20] {
                let slices = block_slices(&d, nodes);
                let mut covered = 0u64;
                for &(lo, hi, owner) in &slices {
                    for idx in lo..=hi {
                        let p = point_at(&d, idx);
                        assert_eq!(shard(p, &ShardDomain::new(&d), nodes), owner, "v={volume} n={nodes} idx={idx}");
                        covered += 1;
                    }
                }
                assert_eq!(covered, volume as u64, "v={volume} n={nodes}");
            }
        }
    }

    #[test]
    fn point_at_matches_iteration() {
        let d: Domain = Rect::new2((0, 0), (2, 3)).into();
        for (i, p) in d.iter().enumerate() {
            assert_eq!(point_at(&d, i as u64), p);
        }
        let s = Domain::sparse(vec![DomainPoint::new1(5), DomainPoint::new1(2)]);
        assert_eq!(point_at(&s, 1), DomainPoint::new1(2));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn block_slices_single_node() {
        let d = Domain::range(10);
        let slices = block_slices(&d, 1);
        assert_eq!(slices, vec![(0, 9, 0)]);
    }

    #[test]
    fn block_slices_empty_domain_yields_nothing() {
        let d = Domain::Rect1(il_geometry::Rect::new1(0, -1));
        assert!(block_slices(&d, 4).is_empty());
    }

    #[test]
    fn sparse_rank_index_matches_linear_scan_on_large_domain() {
        // Regression: `position_in_domain` on a sparse domain is an O(|D|)
        // scan, so evaluating a sharding functor over every point of a
        // sparse launch was O(|D|²). `ShardDomain` must return the exact
        // same ranks in O(1) amortized — and `point_at` must stay its
        // inverse. Use a deterministically shuffled (non-monotone) point
        // list so rank != coordinate anywhere.
        let n = 50_000u64;
        let mut pts: Vec<DomainPoint> = Vec::with_capacity(n as usize);
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..n {
            // LCG-ish scramble; spread over 3D so dense linearization
            // can't accidentally apply.
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
            pts.push(DomainPoint::new3(
                (x >> 48) as i64,
                ((x >> 24) & 0xFF_FFFF) as i64,
                (x & 0xFF_FFFF) as i64,
            ));
        }
        pts.sort_unstable();
        pts.dedup();
        let n = pts.len() as u64;
        // Shuffle deterministically so iteration order != sorted order.
        let mut shuffled = pts.clone();
        for i in (1..shuffled.len()).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            shuffled.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let d = Domain::sparse(shuffled.clone());
        let sd = ShardDomain::new(&d);
        // Full round-trip: position ∘ point_at == id over all of [0, n).
        for idx in 0..n {
            let p = point_at(&d, idx);
            assert_eq!(sd.position(p), idx);
            assert_eq!(point_at(&d, sd.position(p)), p);
        }
        // Spot-check the O(|D|)-per-call free function agrees with the
        // indexed path (checking every point would itself be O(|D|²)).
        for idx in [0, 1, n / 2, n - 2, n - 1] {
            let p = point_at(&d, idx);
            assert_eq!(position_in_domain(p, &d), sd.position(p));
        }
        // Built-in functors see the same ranks through the fast path.
        let shard = block_shard();
        let first = point_at(&d, 0);
        let last = point_at(&d, n - 1);
        assert_eq!(shard(first, &sd, 8), 0);
        assert_eq!(shard(last, &sd, 8), 7);
    }

    #[test]
    fn rank_map_is_rebuilt_across_a_refine_coarsen_cycle() {
        // AMR replaces a launch domain with a refined one and later
        // coarsens it back. The sparse rank index lives *inside* a
        // `ShardDomain` that borrows its domain, so a refined domain can
        // never see the coarse domain's ranks — this pins that contract
        // as a bijection test across the full cycle.
        //
        // Coarse colors 0..8 and refined colors 0..16 share the even
        // points but at different ranks (point 2k is rank 2k refined,
        // rank k coarse), so any reuse of a stale map misranks them.
        let coarse_pts: Vec<DomainPoint> = (0..8).map(|i| DomainPoint::new1(2 * i)).collect();
        let fine_pts: Vec<DomainPoint> = (0..16).map(DomainPoint::new1).collect();
        let coarse = Domain::sparse(coarse_pts.clone());
        let fine = Domain::sparse(fine_pts.clone());
        let recoarse = Domain::sparse(coarse_pts.clone());

        let epochs = [(&coarse, 8u64), (&fine, 16), (&recoarse, 8)];
        let mut owner_maps = Vec::new();
        for (domain, volume) in epochs {
            let sd = ShardDomain::new(domain);
            // position() is a bijection [0, V) ↔ points of this epoch's
            // domain: position ∘ point_at = id, and all ranks distinct.
            let mut seen = std::collections::HashSet::new();
            for idx in 0..volume {
                let p = point_at(domain, idx);
                assert_eq!(sd.position(p), idx, "rank must match this domain's order");
                assert!(seen.insert(sd.position(p)), "ranks must be distinct");
            }
            let shard = block_shard();
            let owners: Vec<NodeId> =
                (0..volume).map(|i| shard(point_at(domain, i), &sd, 4)).collect();
            owner_maps.push(owners);
        }
        // The refined epoch re-shards: shared point 2k moves owners when
        // the domain doubles (rank 2k of 16 vs rank k of 8 under 4 nodes
        // happen to agree for block sharding, so check via a shared point
        // whose rank differs: point 6 is rank 3 coarse (owner 1) and rank
        // 6 refined (owner 1 of 16... use round_robin to make it move).
        let rr = round_robin_shard();
        let p6 = DomainPoint::new1(6);
        let coarse_sd = ShardDomain::new(&coarse);
        let fine_sd = ShardDomain::new(&fine);
        assert_eq!(rr(p6, &coarse_sd, 4), 3, "rank 3 coarse");
        assert_eq!(rr(p6, &fine_sd, 4), 2, "rank 6 refined — the map was rebuilt");
        // Coarsening back restores the original mapping exactly: the
        // rebuilt map is a pure function of the domain, not of history.
        assert_eq!(owner_maps[0], owner_maps[2]);
    }

    #[test]
    fn block_shard_is_monotone() {
        // Owners never decrease along the iteration order.
        let shard = block_shard();
        let d = Domain::range(37);
        let owners: Vec<_> = d.iter().map(|p| shard(p, &ShardDomain::new(&d), 5)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*owners.last().unwrap(), 4);
    }
}
