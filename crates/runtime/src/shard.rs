//! Sharding and slicing functors.
//!
//! Distribution (§5) is under user control: with DCR a **sharding
//! functor** maps each launch-domain point to the node that owns it —
//! a pure function, evaluated locally on every node with no
//! communication; without DCR a **slicing functor** recursively splits
//! the domain so fixed-size slice descriptors can travel a broadcast
//! tree.

use il_geometry::{Domain, DomainPoint};
use il_machine::NodeId;
use std::sync::Arc;

/// A sharding functor: `(point, domain, nodes) → owner node`.
///
/// Must be pure (Legion memoizes them, §5) and total over the domain.
pub type ShardingFn = Arc<dyn Fn(DomainPoint, &Domain, usize) -> NodeId + Send + Sync>;

/// Block sharding: contiguous runs of the domain's iteration order map to
/// the same node. With |D| = k·N, each node owns k consecutive points —
/// the common case in the paper's applications where the partition size
/// equals (a small multiple of) the node count.
pub fn block_shard() -> ShardingFn {
    Arc::new(|p: DomainPoint, domain: &Domain, nodes: usize| {
        let volume = domain.volume().max(1);
        let idx = position_in_domain(p, domain);
        ((idx as u128 * nodes as u128) / volume as u128) as NodeId
    })
}

/// Round-robin sharding: point `i` goes to node `i mod N`.
pub fn round_robin_shard() -> ShardingFn {
    Arc::new(|p: DomainPoint, domain: &Domain, nodes: usize| {
        (position_in_domain(p, domain) % nodes as u64) as NodeId
    })
}

/// Position of `p` in the iteration order of `domain`.
///
/// Dense domains use row-major linearization (O(1)); sparse domains use
/// the point's rank in the list.
pub fn position_in_domain(p: DomainPoint, domain: &Domain) -> u64 {
    match domain {
        Domain::Sparse { points, .. } => points
            .iter()
            .position(|q| *q == p)
            .unwrap_or_else(|| panic!("point {p:?} not in sparse domain")) as u64,
        dense => dense
            .linearize(p)
            .unwrap_or_else(|| panic!("point {p:?} not in domain {dense:?}")),
    }
}

/// The point at iteration-order position `idx` of `domain`.
pub fn point_at(domain: &Domain, idx: u64) -> DomainPoint {
    match domain {
        Domain::Sparse { points, .. } => points[idx as usize],
        Domain::Rect1(r) => r.delinearize(idx).expect("index in range").into(),
        Domain::Rect2(r) => r.delinearize(idx).expect("index in range").into(),
        Domain::Rect3(r) => r.delinearize(idx).expect("index in range").into(),
    }
}

/// Slice `domain` over `nodes` nodes into iteration-order index ranges
/// `(lo, hi, owner)` (inclusive), exactly consistent with
/// [`block_shard`]: range `i` holds every point whose block-shard owner
/// is `i`. A slice descriptor is fixed-size regardless of how many tasks
/// it represents — the O(1) representation the non-DCR distribution
/// ships around the broadcast tree (§5).
pub fn block_slices(domain: &Domain, nodes: usize) -> Vec<(u64, u64, NodeId)> {
    let volume = domain.volume();
    if volume == 0 {
        return vec![];
    }
    let n = nodes as u128;
    let v = volume as u128;
    let mut out = Vec::new();
    for i in 0..nodes as u128 {
        // owner(idx) = floor(idx·N/V) = i  ⇔  idx ∈ [⌈iV/N⌉, ⌈(i+1)V/N⌉-1]
        let lo = (i * v).div_ceil(n);
        let hi = ((i + 1) * v).div_ceil(n);
        if hi > lo {
            out.push((lo as u64, hi as u64 - 1, i as NodeId));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use il_geometry::Rect;

    #[test]
    fn block_shard_balanced_1d() {
        let shard = block_shard();
        let d = Domain::range(8);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &d, 4)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn block_shard_overdecomposed() {
        let shard = block_shard();
        let d = Domain::range(8);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &d, 2)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn block_shard_fewer_points_than_nodes() {
        let shard = block_shard();
        let d = Domain::range(3);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &d, 8)).collect();
        // Spread across the machine, each point on its own node.
        assert_eq!(owners.len(), 3);
        let mut sorted = owners.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "points must go to distinct nodes: {owners:?}");
    }

    #[test]
    fn round_robin() {
        let shard = round_robin_shard();
        let d = Domain::range(6);
        let owners: Vec<NodeId> = d.iter().map(|p| shard(p, &d, 4)).collect();
        assert_eq!(owners, vec![0, 1, 2, 3, 0, 1]);
    }

    #[test]
    fn sharding_2d_covers_all_nodes() {
        let shard = block_shard();
        let d: Domain = Rect::new2((0, 0), (3, 3)).into();
        let mut owners: Vec<NodeId> = d.iter().map(|p| shard(p, &d, 4)).collect();
        owners.sort_unstable();
        owners.dedup();
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sparse_position() {
        let d = Domain::sparse(vec![
            DomainPoint::new3(0, 0, 1),
            DomainPoint::new3(0, 1, 0),
            DomainPoint::new3(1, 0, 0),
        ]);
        assert_eq!(position_in_domain(DomainPoint::new3(1, 0, 0), &d), 2);
    }

    #[test]
    fn slices_agree_with_block_shard() {
        let shard = block_shard();
        for volume in [3i64, 10, 16, 17] {
            let d = Domain::range(volume);
            for nodes in [1usize, 2, 3, 4, 8, 16, 20] {
                let slices = block_slices(&d, nodes);
                let mut covered = 0u64;
                for &(lo, hi, owner) in &slices {
                    for idx in lo..=hi {
                        let p = point_at(&d, idx);
                        assert_eq!(shard(p, &d, nodes), owner, "v={volume} n={nodes} idx={idx}");
                        covered += 1;
                    }
                }
                assert_eq!(covered, volume as u64, "v={volume} n={nodes}");
            }
        }
    }

    #[test]
    fn point_at_matches_iteration() {
        let d: Domain = Rect::new2((0, 0), (2, 3)).into();
        for (i, p) in d.iter().enumerate() {
            assert_eq!(point_at(&d, i as u64), p);
        }
        let s = Domain::sparse(vec![DomainPoint::new1(5), DomainPoint::new1(2)]);
        assert_eq!(point_at(&s, 1), DomainPoint::new1(2));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn block_slices_single_node() {
        let d = Domain::range(10);
        let slices = block_slices(&d, 1);
        assert_eq!(slices, vec![(0, 9, 0)]);
    }

    #[test]
    fn block_slices_empty_domain_yields_nothing() {
        let d = Domain::Rect1(il_geometry::Rect::new1(0, -1));
        assert!(block_slices(&d, 4).is_empty());
    }

    #[test]
    fn block_shard_is_monotone() {
        // Owners never decrease along the iteration order.
        let shard = block_shard();
        let d = Domain::range(37);
        let owners: Vec<_> = d.iter().map(|p| shard(p, &d, 5)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*owners.last().unwrap(), 4);
    }
}
