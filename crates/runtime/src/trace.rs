//! Per-stage runtime tracing and the pipeline audits.
//!
//! When [`RuntimeConfig::trace`](crate::RuntimeConfig::trace) is set, the
//! executor records a deterministic structured event log: one
//! [`TraceEvent`] per unit of attributable pipeline work (an op's
//! issuance/logical-analysis segment, a task's distribution + physical
//! analysis, a task's kernel execution), tagged with the §5 [`Stage`] it
//! belongs to. The log can be exported as Chrome `about:tracing` JSON
//! ([`TraceLog::to_chrome_json`]) so any run opens in a trace viewer
//! (`chrome://tracing`, Perfetto): nodes map to processes, stages to
//! threads.
//!
//! Tracing is pure observability: collecting the log never changes
//! simulated time, message counts, or results — asserted by the
//! determinism tests.
//!
//! The same module hosts the *pipeline audits* — cheap cross-checks of
//! executor bookkeeping that run at the end of a run when
//! [`RuntimeConfig::audit`](crate::RuntimeConfig::audit) is set (the
//! default in debug builds):
//!
//! * **credit conservation** — every task's initial wait count
//!   (dependence edges + incoming copies) is paid by exactly-once
//!   completion credits: no missing credits (deadlock masked by the
//!   event-cap) and no double payment (underflow panics immediately);
//! * **slice-tree coverage** — the non-DCR recursive-halving scatter
//!   (§5, Figure 3) delivers every slice descriptor exactly once.

use il_machine::{NodeId, SimTime, Stage, StageTotals};
use il_testkit::Json;

/// One attributable unit of pipeline work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// The originating operation (index into the issuance stream).
    pub op: u32,
    /// The point task, when the work is per-task (`None` for per-launch
    /// work such as issuance of a compact descriptor).
    pub task: Option<u32>,
    /// The node the work ran on. Issuance-timeline events belong to the
    /// issuing node (node 0; under DCR the identical timeline is
    /// replicated everywhere and recorded once).
    pub node: NodeId,
    /// The pipeline stage.
    pub stage: Stage,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated duration.
    pub duration: SimTime,
}

/// A deterministic structured event log of one run.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// An empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Append an event (recorded in simulator dispatch order, which is
    /// deterministic).
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total recorded duration per stage.
    pub fn stage_totals(&self) -> StageTotals {
        let mut totals = StageTotals::new();
        for e in &self.events {
            totals.add(e.stage, e.duration);
        }
        totals
    }

    /// Export as a Chrome `about:tracing` JSON value: complete (`"X"`)
    /// duration events with microsecond timestamps, `pid` = node and
    /// `tid` = stage, plus process/thread name metadata. Events are
    /// sorted by `(start, node, stage, op, task)` so the output is a
    /// stable function of the event set.
    pub fn to_chrome_json(&self) -> Json {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| {
            let e = &self.events[i];
            (e.start, e.node, e.stage.index(), e.op, e.task)
        });
        let mut rows = Vec::with_capacity(self.events.len());
        let mut named: Vec<(NodeId, usize)> = Vec::new();
        for &i in &order {
            let e = &self.events[i];
            if !named.contains(&(e.node, e.stage.index())) {
                named.push((e.node, e.stage.index()));
            }
            let name = match e.task {
                Some(t) => format!("op{} task{} {}", e.op, t, e.stage.name()),
                None => format!("op{} {}", e.op, e.stage.name()),
            };
            let mut args = Json::obj().set("op", e.op as u64);
            if let Some(t) = e.task {
                args = args.set("task", t as u64);
            }
            rows.push(
                Json::obj()
                    .set("name", name)
                    .set("cat", e.stage.name())
                    .set("ph", "X")
                    .set("ts", e.start.as_us_f64())
                    .set("dur", e.duration.as_us_f64())
                    .set("pid", e.node)
                    .set("tid", e.stage.index())
                    .set("args", args),
            );
        }
        // Metadata rows give the viewer human-readable lane names.
        named.sort_unstable();
        let mut meta = Vec::new();
        let mut seen_nodes: Vec<NodeId> = Vec::new();
        for (node, tid) in named {
            if !seen_nodes.contains(&node) {
                seen_nodes.push(node);
                meta.push(metadata_row("process_name", node, 0, format!("node {node}")));
            }
            meta.push(metadata_row(
                "thread_name",
                node,
                tid,
                Stage::ALL[tid].name().to_string(),
            ));
        }
        meta.extend(rows);
        Json::obj()
            .set("displayTimeUnit", "ns")
            .set("traceEvents", Json::Arr(meta))
    }

    /// [`to_chrome_json`](TraceLog::to_chrome_json), pretty-printed.
    pub fn to_chrome_trace(&self) -> String {
        self.to_chrome_json().to_string_pretty()
    }
}

fn metadata_row(kind: &str, pid: NodeId, tid: usize, name: String) -> Json {
    Json::obj()
        .set("name", kind)
        .set("ph", "M")
        .set("pid", pid)
        .set("tid", tid)
        .set("args", Json::obj().set("name", name))
}

/// Raw audit counters collected during a run (see [`AuditReport`]).
#[derive(Clone, Debug, Default)]
pub struct AuditData {
    /// Credits paid to each task (by dependence-completion messages or
    /// local application), indexed by task ref.
    pub credits_paid: Vec<u64>,
    /// Deliveries of each slice descriptor, indexed `[op][slice]`. Only
    /// populated for ops distributed compactly (non-DCR + IDX).
    pub slice_delivered: Vec<Vec<u32>>,
}

impl AuditData {
    /// Counters sized for `tasks` point tasks and the per-op slice lists.
    pub fn sized(tasks: usize, slices_per_op: &[usize]) -> Self {
        AuditData {
            credits_paid: vec![0; tasks],
            slice_delivered: slices_per_op.iter().map(|&n| vec![0; n]).collect(),
        }
    }
}

/// Outcome of the end-of-run pipeline audits.
///
/// Construction panics on any violation (the audits exist to fail loudly
/// in debug builds); a returned value means both audits passed and
/// carries the verified totals.
#[derive(Clone, Copy, Debug)]
pub struct AuditReport {
    /// Total credits paid across all tasks (== sum of initial waits).
    pub credits_paid: u64,
    /// Slice descriptors verified as delivered exactly once.
    pub slices_covered: u64,
}

/// Run the credit-conservation and slice-coverage audits.
///
/// `waits_init[t]` is the executor's initial wait count for task `t`;
/// `compact_ops[op]` says whether the op traveled as compact slices
/// (ops that did not — DCR or expanded distribution — have no slice
/// deliveries to audit). `faulty` relaxes both audits to what actually
/// holds under an adversarial network: credits are paid *at most* once
/// per edge (drops lose payments, the retry protocol replaces them with
/// coordinator-journal snapshots that never touch these counters), and
/// slice delivery counts may be 0 (the subtree died with a crashed node;
/// tasks were recovered per-task) or ≥ 2 (a duplicated scatter message
/// re-delivered the descriptor; expansion is idempotent).
///
/// # Panics
/// Fault-free: panics with a diagnostic on the first task whose credits
/// were not paid exactly once, or the first slice not delivered exactly
/// once. Faulty: panics only on over-payment (credits above the initial
/// wait count, which the executor's dedup must prevent even under
/// duplication).
pub fn run_audits(
    data: &AuditData,
    waits_init: &[u32],
    compact_ops: &[bool],
    faulty: bool,
) -> AuditReport {
    assert_eq!(data.credits_paid.len(), waits_init.len(), "audit counter size mismatch");
    let mut credits_total = 0u64;
    for (t, (&paid, &init)) in data.credits_paid.iter().zip(waits_init).enumerate() {
        let ok = if faulty { paid <= init as u64 } else { paid == init as u64 };
        assert!(
            ok,
            "credit-conservation audit: task {t} expected {}{init} credits, got {paid} \
             ({} payment)",
            if faulty { "<= " } else { "" },
            if paid < init as u64 { "missing" } else { "duplicate" }
        );
        credits_total += paid;
    }
    let mut slices_covered = 0u64;
    for (op, counts) in data.slice_delivered.iter().enumerate() {
        if !compact_ops.get(op).copied().unwrap_or(false) {
            continue;
        }
        for (slice, &n) in counts.iter().enumerate() {
            if faulty {
                if n >= 1 {
                    slices_covered += 1;
                }
                continue;
            }
            assert!(
                n == 1,
                "slice-coverage audit: op {op} slice {slice} delivered {n} times \
                 (expected exactly once)"
            );
            slices_covered += 1;
        }
    }
    AuditReport { credits_paid: credits_total, slices_covered }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: u32, task: Option<u32>, node: NodeId, stage: Stage, start_us: u64, dur_us: u64) -> TraceEvent {
        TraceEvent {
            op,
            task,
            node,
            stage,
            start: SimTime::us(start_us),
            duration: SimTime::us(dur_us),
        }
    }

    #[test]
    fn stage_totals_accumulate() {
        let mut log = TraceLog::new();
        log.record(ev(0, None, 0, Stage::Issuance, 0, 10));
        log.record(ev(0, Some(1), 1, Stage::Exec, 5, 20));
        log.record(ev(1, Some(2), 1, Stage::Exec, 30, 5));
        let t = log.stage_totals();
        assert_eq!(t.get(Stage::Issuance), SimTime::us(10));
        assert_eq!(t.get(Stage::Exec), SimTime::us(25));
        assert_eq!(t.get(Stage::Network), SimTime::ZERO);
    }

    #[test]
    fn chrome_export_is_order_insensitive() {
        // The same event set recorded in different orders must emit
        // byte-identical JSON (the exporter sorts).
        let a = {
            let mut log = TraceLog::new();
            log.record(ev(0, None, 0, Stage::Issuance, 0, 10));
            log.record(ev(0, Some(3), 1, Stage::Physical, 12, 4));
            log.to_chrome_trace()
        };
        let b = {
            let mut log = TraceLog::new();
            log.record(ev(0, Some(3), 1, Stage::Physical, 12, 4));
            log.record(ev(0, None, 0, Stage::Issuance, 0, 10));
            log.to_chrome_trace()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn chrome_export_shape() {
        let mut log = TraceLog::new();
        log.record(ev(2, Some(7), 1, Stage::Exec, 100, 50));
        let json = log.to_chrome_json();
        let s = json.to_string();
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"pid\":1"));
        assert!(s.contains("\"name\":\"op2 task7 exec\""));
        assert!(s.contains("\"thread_name\""));
        // Timestamps are microseconds.
        assert!(s.contains("\"ts\":100"), "{s}");
        assert!(s.contains("\"dur\":50"), "{s}");
    }

    #[test]
    fn audits_pass_on_consistent_counters() {
        let mut data = AuditData::sized(3, &[2, 1]);
        data.credits_paid = vec![2, 0, 1];
        data.slice_delivered = vec![vec![1, 1], vec![0]];
        let report = run_audits(&data, &[2, 0, 1], &[true, false], false);
        assert_eq!(report.credits_paid, 3);
        assert_eq!(report.slices_covered, 2);
    }

    #[test]
    #[should_panic(expected = "credit-conservation audit")]
    fn credit_audit_catches_missing_payment() {
        let mut data = AuditData::sized(1, &[]);
        data.credits_paid = vec![1];
        run_audits(&data, &[2], &[], false);
    }

    #[test]
    #[should_panic(expected = "slice-coverage audit")]
    fn slice_audit_catches_double_delivery() {
        let mut data = AuditData::sized(0, &[1]);
        data.slice_delivered = vec![vec![2]];
        run_audits(&data, &[], &[true], false);
    }

    #[test]
    fn faulty_audits_tolerate_drops_and_duplicates() {
        // Under faults: under-payment and 0/2 slice deliveries are legal;
        // only credit over-payment still trips.
        let mut data = AuditData::sized(2, &[3]);
        data.credits_paid = vec![1, 0]; // task 0 under-paid, task 1 unpaid
        data.slice_delivered = vec![vec![0, 2, 1]]; // lost, duplicated, normal
        let report = run_audits(&data, &[2, 1], &[true], true);
        assert_eq!(report.credits_paid, 1);
        assert_eq!(report.slices_covered, 2); // the two that arrived at all
    }

    #[test]
    #[should_panic(expected = "credit-conservation audit")]
    fn faulty_credit_audit_still_catches_overpayment() {
        let mut data = AuditData::sized(1, &[]);
        data.credits_paid = vec![3];
        run_audits(&data, &[2], &[], true);
    }
}
