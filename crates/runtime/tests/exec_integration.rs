//! End-to-end executor tests: a small multi-launch program is run under
//! every (DCR × IDX) configuration and node count, in validation mode,
//! and its final data must be bit-identical to a sequential reference —
//! the core guarantee of the programming model: the runtime configuration
//! changes *performance*, never *semantics*.

use il_analysis::ProjExpr;
use il_geometry::{Domain, DomainPoint};
use il_machine::{HierarchySpec, SimTime};
use il_region::{
    equal_partition_1d, FieldId, FieldKind, FieldSpaceDesc, Privilege, RegionTreeId,
};
use il_runtime::{
    execute, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
    RuntimeConfig,
};

const N: i64 = 16; // grid elements
const B: i64 = 4; // blocks
const ITERS: usize = 3;

struct Built {
    program: Program,
    g_tree: RegionTreeId,
    x_tree: RegionTreeId,
    gf: FieldId,
    xf: FieldId,
}

/// G[16] partitioned into 4 blocks; X[4] one slot per block.
/// Per iteration: `collect` (read G.block[i] → write X[i] = block sum),
/// `scramble` (rw X[(3i)%4], += 1), `shift_add` (rw G.block[i], read
/// X[(i+3)%4], add neighbor sum to every element).
fn build_program() -> Built {
    let mut b = ProgramBuilder::new();

    let mut gfs = FieldSpaceDesc::new();
    let gf = gfs.add("v", FieldKind::F64);
    let gfs = b.forest.create_field_space(gfs);
    let g = b.forest.create_region(Domain::range(N), gfs);
    let gp = equal_partition_1d(&mut b.forest, g.space, B as usize);

    let mut xfs = FieldSpaceDesc::new();
    let xf = xfs.add("s", FieldKind::F64);
    let xfs = b.forest.create_field_space(xfs);
    let x = b.forest.create_region(Domain::range(B), xfs);
    let xp = equal_partition_1d(&mut b.forest, x.space, B as usize);

    let ident = b.identity_functor();
    let shift = b.functor(ProjExpr::Modular { a: 1, b: 3, m: B }); // (i+3) mod 4
    let scram = b.functor(ProjExpr::opaque(|p| DomainPoint::new1((3 * p.x()).rem_euclid(4))));

    let init = b.task("init", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, gf, p, p.x() as f64);
        }
    });
    let collect = b.task("collect", move |ctx| {
        let sum: f64 = ctx.domain(0).iter().map(|p| ctx.read::<f64>(0, gf, p)).sum();
        let slot = ctx.domain(1).iter().next().unwrap();
        ctx.write(1, xf, slot, sum);
    });
    let scramble = b.task("scramble", move |ctx| {
        let slot = ctx.domain(0).iter().next().unwrap();
        let v: f64 = ctx.read(0, xf, slot);
        ctx.write(0, xf, slot, v + 1.0);
    });
    let shift_add = b.task("shift_add", move |ctx| {
        let nb = ctx.domain(1).iter().next().unwrap();
        let add: f64 = ctx.read(1, xf, nb);
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, gf, p);
            ctx.write(0, gf, p, v + add);
        }
    });

    let domain = Domain::range(B);
    let req = |partition, functor, privilege, tree, field_space| RegionReq {
        partition,
        functor,
        privilege,
        fields: vec![],
        tree,
        field_space,
    };
    let kernel = CostSpec::Uniform(SimTime::us(200));

    b.index_launch(IndexLaunchDesc {
        task: init,
        domain: domain.clone(),
        reqs: vec![req(gp, ident, Privilege::Write, g.tree, gfs)],
        scalars: vec![],
        cost: kernel.clone(),
        shard: None,
    });
    b.start_timing();
    for _ in 0..ITERS {
        b.index_launch(IndexLaunchDesc {
            task: collect,
            domain: domain.clone(),
            reqs: vec![
                req(gp, ident, Privilege::Read, g.tree, gfs),
                req(xp, ident, Privilege::Write, x.tree, xfs),
            ],
            scalars: vec![],
            cost: kernel.clone(),
            shard: None,
        });
        b.index_launch(IndexLaunchDesc {
            task: scramble,
            domain: domain.clone(),
            reqs: vec![req(xp, scram, Privilege::ReadWrite, x.tree, xfs)],
            scalars: vec![],
            cost: kernel.clone(),
            shard: None,
        });
        b.index_launch(IndexLaunchDesc {
            task: shift_add,
            domain: domain.clone(),
            reqs: vec![
                req(gp, ident, Privilege::ReadWrite, g.tree, gfs),
                req(xp, shift, Privilege::Read, x.tree, xfs),
            ],
            scalars: vec![],
            cost: kernel.clone(),
            shard: None,
        });
    }
    Built { program: b.build(), g_tree: g.tree, x_tree: x.tree, gf, xf }
}

/// Sequential reference of the same computation.
fn reference() -> (Vec<f64>, Vec<f64>) {
    let mut g: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let mut x = vec![0.0f64; B as usize];
    let bs = (N / B) as usize;
    for _ in 0..ITERS {
        for i in 0..B as usize {
            x[i] = g[i * bs..(i + 1) * bs].iter().sum();
        }
        for i in 0..B as usize {
            let j = (3 * i) % 4;
            x[j] += 1.0;
        }
        let snapshot = x.clone();
        for i in 0..B as usize {
            let nb = (i + 3) % 4;
            for v in &mut g[i * bs..(i + 1) * bs] {
                *v += snapshot[nb];
            }
        }
    }
    (g, x)
}

/// Collect final G and X values from the run's instance store.
fn extract(built: &Built, report: &il_runtime::RunReport) -> (Vec<f64>, Vec<f64>) {
    let store = report.store.as_ref().expect("validate mode keeps the store");
    let forest = &built.program.forest;
    let bs = (N / B) as usize;
    let mut g = vec![0.0f64; N as usize];
    let mut x = vec![0.0f64; B as usize];
    // Block subspaces are the first partitions of each region.
    for space_id in 0..forest.num_spaces() as u32 {
        let space = il_region::IndexSpaceId(space_id);
        let node = forest.space(space);
        let Some((pid, color)) = node.parent else { continue };
        let _ = pid;
        let c = color.x() as usize;
        match &node.domain {
            Domain::Rect1(r) if r.volume() == bs as u64 => {
                if let Some(inst) = store.get((built.g_tree, space)) {
                    for p in node.domain.iter() {
                        g[p.x() as usize] = inst.get::<f64>(built.gf, p);
                    }
                }
                let _ = c;
            }
            Domain::Rect1(r) if r.volume() == 1 => {
                if let Some(inst) = store.get((built.x_tree, space)) {
                    for p in node.domain.iter() {
                        x[p.x() as usize] = inst.get::<f64>(built.xf, p);
                    }
                }
            }
            _ => {}
        }
    }
    (g, x)
}

#[test]
fn all_configs_match_sequential_reference() {
    let (g_ref, x_ref) = reference();
    for nodes in [1usize, 2, 4] {
        for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
            for tracing in [true, false] {
                let built = build_program();
                let config = RuntimeConfig::validate(nodes)
                    .with_axes(dcr, idx)
                    .with_tracing(tracing);
                let report = execute(&built.program, &config);
                assert_eq!(report.tasks, (1 + 3 * ITERS as u64) * B as u64);
                let (g, x) = extract(&built, &report);
                assert_eq!(
                    g, g_ref,
                    "G mismatch: nodes={nodes} dcr={dcr} idx={idx} tracing={tracing}"
                );
                assert_eq!(
                    x, x_ref,
                    "X mismatch: nodes={nodes} dcr={dcr} idx={idx} tracing={tracing}"
                );
            }
        }
    }
}

#[test]
fn deterministic_replay() {
    let built = build_program();
    let config = RuntimeConfig::validate(4);
    let a = execute(&built.program, &config);
    let b = execute(&built.program, &config);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.messages, b.messages);
    assert_eq!(a.bytes, b.bytes);
}

/// The hierarchical interconnect is opt-in performance modeling, never
/// semantics: routing the same program through a two-level switch tree
/// completes the same tasks with bit-identical validated data, runs
/// deterministically, and can only stretch simulated time.
#[test]
fn hierarchical_network_changes_time_never_data() {
    let (g_ref, x_ref) = reference();
    let flat = execute(&build_program().program, &RuntimeConfig::validate(4));
    let built = build_program();
    let config =
        RuntimeConfig::validate(4).with_net_hierarchy(HierarchySpec::two_level(2, 2));
    let a = execute(&built.program, &config);
    let b = execute(&built.program, &config);
    assert_eq!(a.tasks, flat.tasks);
    let (g, x) = extract(&built, &a);
    assert_eq!(g, g_ref, "hierarchical routing changed computed data");
    assert_eq!(x, x_ref);
    assert!(a.makespan >= flat.makespan, "added switch hops cannot shrink the run");
    assert_eq!((a.makespan, a.messages, a.bytes), (b.makespan, b.messages, b.bytes));
}

#[test]
fn scale_mode_skips_data() {
    let built = build_program();
    let report = execute(&built.program, &RuntimeConfig::scale(4));
    assert!(report.store.is_none());
    assert!(report.makespan > SimTime::ZERO);
    assert_eq!(report.tasks, (1 + 3 * ITERS as u64) * B as u64);
}

#[test]
fn index_launches_shrink_issuance() {
    let built = build_program();
    let with_idx = execute(&built.program, &RuntimeConfig::scale(4));
    let without = execute(&built.program, &RuntimeConfig::scale(4).with_axes(true, false));
    assert!(
        with_idx.issuance_span < without.issuance_span,
        "IDX issuance {} should be below No-IDX {}",
        with_idx.issuance_span,
        without.issuance_span
    );
}

#[test]
fn non_dcr_centralizes_distribution() {
    let built = build_program();
    let dcr = execute(&built.program, &RuntimeConfig::scale(4));
    let central = execute(&built.program, &RuntimeConfig::scale(4).with_axes(false, true));
    // Non-DCR must push work out of node 0 over the network.
    assert!(central.messages > dcr.messages);
}

#[test]
fn dynamic_checks_cost_appears_only_when_enabled() {
    let built = build_program();
    let on = execute(&built.program, &RuntimeConfig::scale(2));
    // The opaque `scramble` functor needs a dynamic check.
    assert!(on.dynamic_check_time > SimTime::ZERO);
    let built2 = build_program();
    let off = execute(&built2.program, &RuntimeConfig::scale(2).with_dynamic_checks(false));
    assert_eq!(off.dynamic_check_time, SimTime::ZERO);
    assert!(off.issuance_span < on.issuance_span);
}

#[test]
fn elapsed_excludes_setup() {
    let built = build_program();
    let report = execute(&built.program, &RuntimeConfig::scale(2));
    assert!(report.setup_done > SimTime::ZERO);
    assert!(report.elapsed < report.makespan);
    assert_eq!(report.elapsed, report.makespan - report.setup_done);
}

#[test]
fn tracing_discounts_repeated_launches() {
    // With tracing, iterations after the first replay their per-task
    // analysis cheaply; the issuance span of a No-IDX run must shrink.
    let built = build_program();
    let traced = execute(
        &built.program,
        &RuntimeConfig::scale(4).with_axes(true, false).with_tracing(true),
    );
    let built2 = build_program();
    let untraced = execute(
        &built2.program,
        &RuntimeConfig::scale(4).with_axes(true, false).with_tracing(false),
    );
    assert!(
        traced.issuance_span < untraced.issuance_span,
        "traced {} !< untraced {}",
        traced.issuance_span,
        untraced.issuance_span
    );
}

#[test]
fn tracing_forces_expansion_without_dcr() {
    // §6.2.1: with tracing but no DCR, index launches expand before
    // distribution — the issuance span becomes O(|D|) per op instead of
    // O(1), unlike the DCR+IDX+tracing configuration.
    let built = build_program();
    let dcr = execute(&built.program, &RuntimeConfig::scale(4));
    let built2 = build_program();
    let nodcr = execute(&built2.program, &RuntimeConfig::scale(4).with_axes(false, true));
    assert!(
        nodcr.issuance_span > dcr.issuance_span * 2,
        "forced expansion should blow up the issuance span: {} vs {}",
        nodcr.issuance_span,
        dcr.issuance_span
    );
    // ... and turning tracing off restores the compact path.
    let built3 = build_program();
    let nodcr_notrace = execute(
        &built3.program,
        &RuntimeConfig::scale(4).with_axes(false, true).with_tracing(false),
    );
    assert!(nodcr_notrace.issuance_span < nodcr.issuance_span);
}

#[test]
fn single_node_runs_everything_locally() {
    let built = build_program();
    let report = execute(&built.program, &RuntimeConfig::validate(1));
    assert_eq!(report.messages, 0, "one node never touches the network");
    assert_eq!(report.bytes, 0);
    let (g, x) = extract(&built, &report);
    let (g_ref, x_ref) = reference();
    assert_eq!(g, g_ref);
    assert_eq!(x, x_ref);
}

#[test]
fn setup_only_program_has_zero_elapsed() {
    // A program whose ops are all setup (timed_from == ops.len()) spends
    // everything before the timer starts.
    use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc};
    let mut b = il_runtime::ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(8), fs);
    let part = equal_partition_1d(&mut b.forest, region.space, 2);
    let ident = b.identity_functor();
    let t = b.task("w", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, f, p, 1.0);
        }
    });
    b.index_launch(IndexLaunchDesc {
        task: t,
        domain: Domain::range(2),
        reqs: vec![RegionReq {
            partition: part,
            functor: ident,
            privilege: Privilege::Write,
            fields: vec![],
            tree: region.tree,
            field_space: fs,
        }],
        scalars: vec![],
        cost: CostSpec::Uniform(SimTime::us(10)),
        shard: None,
    });
    b.start_timing(); // nothing after: all ops are setup
    let program = b.build();
    let report = execute(&program, &RuntimeConfig::validate(2));
    assert_eq!(report.elapsed, SimTime::ZERO);
    assert_eq!(report.setup_done, report.makespan);
}

#[test]
fn more_nodes_than_tasks() {
    // A 4-point launch on an 8-node machine: tasks spread over 4 nodes,
    // the rest idle; everything still completes.
    let built = build_program();
    let report = execute(&built.program, &RuntimeConfig::validate(8));
    assert_eq!(report.tasks, (1 + 3 * ITERS as u64) * B as u64);
    let (g, x) = extract(&built, &report);
    let (g_ref, x_ref) = reference();
    assert_eq!(g, g_ref);
    assert_eq!(x, x_ref);
}

#[test]
fn free_cost_model_still_correct() {
    // Zeroing every overhead must not change semantics (events at equal
    // timestamps keep deterministic FIFO order).
    let built = build_program();
    let mut config = RuntimeConfig::validate(4);
    config.cost = il_runtime::CostModel::free();
    let report = execute(&built.program, &config);
    let (g, x) = extract(&built, &report);
    let (g_ref, x_ref) = reference();
    assert_eq!(g, g_ref);
    assert_eq!(x, x_ref);
    assert_eq!(report.dynamic_check_time, SimTime::ZERO);
}

#[test]
fn round_robin_sharding_with_slice_scatter() {
    // Round-robin ownership fragments the iteration order into |D| slice
    // runs; the non-DCR scatter must still deliver every task to its
    // owner and preserve semantics.
    use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc};
    let mut b = il_runtime::ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(12), fs);
    let part = equal_partition_1d(&mut b.forest, region.space, 6);
    let ident = b.identity_functor();
    let t = b.task("mark", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, f, p, ctx.point.x() as f64 + 100.0);
        }
    });
    b.index_launch(IndexLaunchDesc {
        task: t,
        domain: Domain::range(6),
        reqs: vec![RegionReq {
            partition: part,
            functor: ident,
            privilege: Privilege::Write,
            fields: vec![],
            tree: region.tree,
            field_space: fs,
        }],
        scalars: vec![],
        cost: CostSpec::Uniform(SimTime::us(10)),
        shard: Some(il_runtime::round_robin_shard()),
    });
    let program = b.build();
    for (dcr, idx, tracing) in [(false, true, false), (false, false, true), (true, true, true)] {
        let rt = RuntimeConfig::validate(3).with_axes(dcr, idx).with_tracing(tracing);
        let report = execute(&program, &rt);
        assert_eq!(report.tasks, 6);
        let store = report.store.unwrap();
        let root = program.forest.tree_root(region.tree);
        let blocks = program.forest.space(root).partitions[0];
        for (color, &space) in &program.forest.partition(blocks).children {
            let inst = store.get((region.tree, space)).unwrap();
            for p in program.forest.domain(space).iter() {
                assert_eq!(
                    inst.get::<f64>(f, p),
                    color.x() as f64 + 100.0,
                    "dcr={dcr} idx={idx}"
                );
            }
        }
    }
}

#[test]
fn commuting_reductions_share_a_buffer_without_ordering() {
    // Regression: a statically-safe launch whose point tasks reduce into
    // the *same* subspace (here `i mod 2` with Reduce(Sum)) used to get an
    // intra-launch "epoch opener" ordering edge for the identity fill —
    // tripping expand_program's safe ⇒ zero-intra-launch-deps assertion.
    // The fill is now lazy (once per buffer/field/epoch, at whichever
    // epoch member executes first), so the launch expands edge-free and
    // the folded results are still exact.
    use il_region::ReductionKind;
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("acc", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(4), fs);
    let part = equal_partition_1d(&mut b.forest, region.space, 2);
    let modular = b.functor(ProjExpr::Modular { a: 1, b: 0, m: 2 });
    let t = b.task("contribute", move |ctx| {
        let i = ctx.point.x();
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.fold_f64(0, f, p, ReductionKind::Sum, (i + 1) as f64);
        }
    });
    b.index_launch(IndexLaunchDesc {
        task: t,
        domain: Domain::range(8),
        reqs: vec![RegionReq {
            partition: part,
            functor: modular,
            privilege: Privilege::Reduce(ReductionKind::Sum.id()),
            fields: vec![],
            tree: region.tree,
            field_space: fs,
        }],
        scalars: vec![],
        cost: CostSpec::Uniform(SimTime::us(10)),
        shard: None,
    });
    let program = b.build();

    let config = RuntimeConfig::validate(2);
    let expanded = il_runtime::expand_program(&program, &config);
    assert!(matches!(
        expanded.safety[0],
        il_runtime::depgraph::OpSafety::Static
    ));
    assert!(
        expanded.deps.iter().all(|d| d.is_empty()),
        "commuting reductions must stay unordered: {:?}",
        expanded.deps
    );

    let report = execute(&program, &config);
    assert_eq!(report.tasks, 8);
    let store = report.store.unwrap();
    // Block c accumulates (i+1) for all launch points with i % 2 == c:
    // block 0 gets 1+3+5+7 = 16, block 1 gets 2+4+6+8 = 20.
    let blocks = program.forest.space(program.forest.tree_root(region.tree)).partitions[0];
    for (color, &space) in &program.forest.partition(blocks).children {
        let want = if color.x() == 0 { 16.0 } else { 20.0 };
        let inst = store.get((region.tree, space)).unwrap();
        for p in program.forest.domain(space).iter() {
            assert_eq!(inst.get::<f64>(f, p), want, "block {color:?}");
        }
    }
}
