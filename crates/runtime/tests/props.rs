//! Property tests for the runtime: randomly generated programs produce
//! identical data under every runtime configuration, and the dependence
//! oracle's structural invariants hold. Runs on the hermetic `il-testkit`
//! harness with 24 cases per property (these build whole programs per
//! case); failures print a rerunnable `IL_TESTKIT_SEED`.

use il_analysis::ProjExpr;
use il_geometry::{Domain, DomainPoint};
use il_machine::SimTime;
use il_region::{
    equal_partition_1d, FieldId, FieldKind, FieldSpaceDesc, Privilege, RegionTreeId,
    ReductionKind,
};
use il_runtime::{
    execute, expand_program, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
    RuntimeConfig,
};
use il_testkit::prop::{check_with, i64s, map, one_of, usizes, vec_of, Config, OneOf};
use il_testkit::{prop_assert, prop_assert_eq};

const PIECES: i64 = 4;
const N: i64 = 16;
const CASES: u64 = 24;

/// One randomly chosen launch: a task kind plus a shift for its functor.
#[derive(Clone, Debug)]
enum OpSpec {
    /// Write `value` into block[i].
    WriteConst(i8),
    /// rw block[i], read block[(i+shift) mod 4] of the *other* field:
    /// a[i] += b[(i+shift)%4] sum.
    AddShifted(u8),
    /// Reduce +value into block[(i+shift) mod 4].
    ReduceShifted(u8, i8),
}

fn op_spec() -> OneOf<OpSpec> {
    one_of(vec![
        Box::new(map(i64s(-20..20), |v| OpSpec::WriteConst(v as i8))),
        Box::new(map(i64s(0..4), |s| OpSpec::AddShifted(s as u8))),
        Box::new(map((i64s(0..4), i64s(-10..10)), |(s, v)| {
            OpSpec::ReduceShifted(s as u8, v as i8)
        })),
    ])
}

struct Built {
    program: Program,
    tree: RegionTreeId,
    fa: FieldId,
    fb: FieldId,
}

fn build(specs: &[OpSpec]) -> Built {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let fa = fsd.add("a", FieldKind::F64);
    let fb = fsd.add("b", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(N), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, PIECES as usize);
    let ident = b.identity_functor();
    let domain = Domain::range(PIECES);
    let cost = CostSpec::Uniform(SimTime::us(40));

    // Init both fields so reads are defined.
    let init = b.task("init", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, fa, p, p.x() as f64);
            ctx.write(0, fb, p, (2 * p.x()) as f64);
        }
    });
    b.index_launch(IndexLaunchDesc {
        task: init,
        domain: domain.clone(),
        reqs: vec![RegionReq {
            partition: blocks,
            functor: ident,
            privilege: Privilege::Write,
            fields: vec![],
            tree: region.tree,
            field_space: fs,
        }],
        scalars: vec![],
        cost: cost.clone(),
        shard: None,
    });
    b.start_timing();

    for spec in specs {
        match spec {
            OpSpec::WriteConst(v) => {
                let v = *v as f64;
                let t = b.task("write_const", move |ctx| {
                    let pts: Vec<_> = ctx.domain(0).iter().collect();
                    for p in pts {
                        ctx.write(0, fb, p, v + p.x() as f64);
                    }
                });
                b.index_launch(IndexLaunchDesc {
                    task: t,
                    domain: domain.clone(),
                    reqs: vec![RegionReq {
                        partition: blocks,
                        functor: ident,
                        privilege: Privilege::ReadWrite,
                        fields: vec![fb],
                        tree: region.tree,
                        field_space: fs,
                    }],
                    scalars: vec![],
                    cost: cost.clone(),
                    shard: None,
                });
            }
            OpSpec::AddShifted(shift) => {
                let t = b.task("add_shifted", move |ctx| {
                    let src: Vec<(DomainPoint, f64)> = ctx
                        .domain(1)
                        .iter()
                        .map(|p| (p, ctx.read::<f64>(1, fb, p)))
                        .collect();
                    let pts: Vec<_> = ctx.domain(0).iter().collect();
                    for (k, p) in pts.into_iter().enumerate() {
                        let v: f64 = ctx.read(0, fa, p);
                        ctx.write(0, fa, p, v + src[k % src.len()].1);
                    }
                });
                let shifted = b.functor(ProjExpr::Modular { a: 1, b: *shift as i64, m: PIECES });
                b.index_launch(IndexLaunchDesc {
                    task: t,
                    domain: domain.clone(),
                    reqs: vec![
                        RegionReq {
                            partition: blocks,
                            functor: ident,
                            privilege: Privilege::ReadWrite,
                            fields: vec![fa],
                            tree: region.tree,
                            field_space: fs,
                        },
                        RegionReq {
                            partition: blocks,
                            functor: shifted,
                            privilege: Privilege::Read,
                            fields: vec![fb],
                            tree: region.tree,
                            field_space: fs,
                        },
                    ],
                    scalars: vec![],
                    cost: cost.clone(),
                    shard: None,
                });
            }
            OpSpec::ReduceShifted(shift, v) => {
                let v = *v as f64;
                let t = b.task("reduce_shifted", move |ctx| {
                    let pts: Vec<_> = ctx.domain(0).iter().collect();
                    for p in pts {
                        ctx.fold_f64(0, fb, p, ReductionKind::Sum, v);
                    }
                });
                let shifted = b.functor(ProjExpr::Modular { a: 1, b: *shift as i64, m: PIECES });
                b.index_launch(IndexLaunchDesc {
                    task: t,
                    domain: domain.clone(),
                    reqs: vec![RegionReq {
                        partition: blocks,
                        functor: shifted,
                        privilege: Privilege::Reduce(ReductionKind::Sum.id()),
                        fields: vec![fb],
                        tree: region.tree,
                        field_space: fs,
                    }],
                    scalars: vec![],
                    cost: cost.clone(),
                    shard: None,
                });
            }
        }
    }
    Built { program: b.build(), tree: region.tree, fa, fb }
}

fn extract(built: &Built, report: &il_runtime::RunReport) -> Vec<(f64, f64)> {
    let store = report.store.as_ref().unwrap();
    let forest = &built.program.forest;
    let root = forest.tree_root(built.tree);
    let blocks = forest.space(root).partitions[0];
    let mut out = vec![(f64::NAN, f64::NAN); N as usize];
    for &space in forest.partition(blocks).children.values() {
        if let Some(inst) = store.get((built.tree, space)) {
            for p in forest.domain(space).iter() {
                out[p.x() as usize] =
                    (inst.get::<f64>(built.fa, p), inst.get::<f64>(built.fb, p));
            }
        }
    }
    out
}

/// The fundamental guarantee: random programs compute identical data
/// under every (nodes × DCR × IDX × tracing) configuration.
#[test]
fn configs_agree_on_random_programs() {
    check_with(
        Config::from_env("configs_agree_on_random_programs").with_cases(CASES),
        &vec_of(op_spec(), 1..7),
        |specs| {
            let baseline = {
                let built = build(specs);
                let report = execute(&built.program, &RuntimeConfig::validate(1));
                extract(&built, &report)
            };
            for (nodes, dcr, idx, tracing) in [
                (2usize, true, true, true),
                (4, true, false, true),
                (3, false, true, false),
                (4, false, false, true),
            ] {
                let built = build(specs);
                let rt =
                    RuntimeConfig::validate(nodes).with_axes(dcr, idx).with_tracing(tracing);
                let report = execute(&built.program, &rt);
                let got = extract(&built, &report);
                prop_assert_eq!(
                    &got,
                    &baseline,
                    "mismatch: nodes={} dcr={} idx={} tracing={} specs={:?}",
                    nodes,
                    dcr,
                    idx,
                    tracing,
                    specs
                );
            }
            Ok(())
        },
    );
}

/// Oracle invariants on random programs: edges point backwards (the
/// graph is a DAG by construction), every dependence is between tasks
/// of different ops unless the op was sequentialized, and successor
/// lists mirror predecessor lists.
#[test]
fn oracle_structural_invariants() {
    check_with(
        Config::from_env("oracle_structural_invariants").with_cases(CASES),
        &(vec_of(op_spec(), 1..7), usizes(1..5)),
        |(specs, nodes)| {
            let built = build(specs);
            let config = RuntimeConfig::scale(*nodes);
            let ex = expand_program(&built.program, &config);
            for (t, preds) in ex.deps.iter().enumerate() {
                for &p in preds {
                    prop_assert!((p as usize) < t, "edge must point backwards");
                    prop_assert!(ex.succs[p as usize].contains(&(t as u32)));
                }
            }
            for (t, succs) in ex.succs.iter().enumerate() {
                for &s in succs {
                    prop_assert!(ex.deps[s as usize].contains(&(t as u32)));
                }
            }
            // Copies reference real dependence edges.
            for (t, copies) in ex.copies.iter().enumerate() {
                for c in copies {
                    prop_assert!(ex.deps[t].contains(&c.from));
                    prop_assert!(c.bytes > 0);
                }
            }
            Ok(())
        },
    );
}
