//! Scheduler property tier: whatever the policy, the service must
//! remain *work-conserving, starvation-free, and semantics-neutral*.
//!
//! * **Conservation** — every submitted session executes exactly once:
//!   the set of finished submit indices is exactly the submission set,
//!   and each session ran its full task count.
//! * **No starvation** — under [`FairShare`] a light tenant waits at
//!   most a couple of rounds behind a flooding tenant, and under
//!   [`AgedPriority`] a low-priority session closes any fixed priority
//!   gap in `gap + 1` rounds of aging — even against an adversarial
//!   stream that injects a fresh high-priority session every round.
//! * **Policy independence** — admission order changes *when* a session
//!   runs, never *what* it computes: per-session reports are identical
//!   across FIFO, fair-share, and aged-priority.

use il_analysis::ProjExpr;
use il_geometry::{Domain, DomainPoint};
use il_machine::SimTime;
use il_region::{equal_partition_1d, FieldKind, FieldSpaceDesc, Privilege};
use il_runtime::service::{AgedPriority, FairShare, PendingView, SchedulingPolicy};
use il_runtime::{
    policy_by_name, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq, RunReport,
    RuntimeConfig, Service, ServiceConfig, ServiceReport, SessionSpec,
};
use std::rc::Rc;

const NODES: usize = 2;
const WIDTH: usize = 4; // tasks per launch

/// A modeled-cost program of `launches` sequential read-write launches,
/// each `WIDTH` tasks of `task_us` microseconds.
fn modeled_program(launches: usize, task_us: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("v", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(4 * WIDTH as i64), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, WIDTH);
    let ident = b.identity_functor();
    let task = b.task_modeled("work");
    for _ in 0..launches {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: Domain::range(WIDTH as i64),
            reqs: vec![RegionReq {
                partition: blocks,
                functor: ident,
                privilege: Privilege::ReadWrite,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(task_us)),
            shard: None,
        });
    }
    b.build()
}

/// An aperiodic variant (opaque functor) so programs differ in shape,
/// not just length.
fn opaque_program(task_us: u64) -> Program {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("v", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(4 * WIDTH as i64), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, WIDTH);
    let task = b.task_modeled("rev");
    for functor in [
        b.identity_functor(),
        b.functor(ProjExpr::opaque(|p| DomainPoint::new1(WIDTH as i64 - 1 - p.x()))),
    ] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: Domain::range(WIDTH as i64),
            reqs: vec![RegionReq {
                partition: blocks,
                functor,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(task_us)),
            shard: None,
        });
    }
    b.build()
}

fn fingerprint(r: &RunReport) -> String {
    format!(
        "makespan={:?} tasks={} messages={} bytes={} stages={}",
        r.makespan,
        r.tasks,
        r.messages,
        r.bytes,
        r.stage_json().to_string(),
    )
}

/// 12 sessions over 4 tenants, mixed lengths and shapes, staggered
/// arrivals. Returns the specs plus each session's expected task count.
fn workload() -> (Vec<SessionSpec>, Vec<u64>) {
    let mut sessions = Vec::new();
    let mut want_tasks = Vec::new();
    for i in 0..12usize {
        let (program, tasks) = if i % 3 == 2 {
            (opaque_program(10 + i as u64), 2 * WIDTH as u64)
        } else {
            let launches = 2 + i % 4;
            (modeled_program(launches, 20), (launches * WIDTH) as u64)
        };
        sessions.push(SessionSpec {
            tenant: (i % 4) as u32,
            priority: (i % 3) as u32,
            arrival: SimTime::us(15 * i as u64),
            program: Rc::new(program),
            config: RuntimeConfig::scale(NODES),
        });
        want_tasks.push(tasks);
    }
    (sessions, want_tasks)
}

fn run(sessions: &[SessionSpec], slots: usize, policy: &str) -> ServiceReport {
    let mut svc = Service::new(
        ServiceConfig {
            slots,
            slot_nodes: NODES,
            queue_cap: 64,
            faults: None,
            replication_overrides: vec![],
        },
        policy_by_name(policy),
    );
    svc.run(sessions)
}

/// Conservation: across all three policies, every submission executes
/// exactly once and to completion.
#[test]
fn every_submission_executes_exactly_once() {
    let (sessions, want_tasks) = workload();
    for policy in ["fifo", "fair", "aged-priority"] {
        let out = run(&sessions, 2, policy);
        assert!(out.rejected.is_empty(), "{policy}: workload fits the queue");
        assert_eq!(out.sessions.len(), sessions.len(), "{policy}: lost sessions");
        let mut seen: Vec<usize> = out.sessions.iter().map(|s| s.submit_idx).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..sessions.len()).collect::<Vec<_>>(), "{policy}: duplicate or missing");
        for s in &out.sessions {
            assert_eq!(
                s.report.tasks, want_tasks[s.submit_idx],
                "{policy}: session {} ran a partial program",
                s.submit_idx
            );
            assert!(s.finished >= s.admitted && s.admitted >= s.arrival);
        }
    }
}

/// Fair share, end to end: tenant 0 floods ten sessions at time zero;
/// tenant 1 submits one. After tenant 0's first completion accrues
/// service time, tenant 1 must win the very next round — it waits at
/// most 2 rounds despite arriving behind the whole flood.
#[test]
fn fair_share_bounds_light_tenant_wait() {
    let mut sessions: Vec<SessionSpec> = (0..10)
        .map(|i| SessionSpec {
            tenant: 0,
            priority: 0,
            arrival: SimTime::ZERO,
            program: Rc::new(modeled_program(6, 30)),
            config: RuntimeConfig::scale(NODES),
        })
        .collect();
    sessions.push(SessionSpec {
        tenant: 1,
        priority: 0,
        arrival: SimTime::ZERO,
        program: Rc::new(modeled_program(2, 30)),
        config: RuntimeConfig::scale(NODES),
    });
    let light_idx = sessions.len() - 1;
    let out = run(&sessions, 1, "fair");
    let light = out
        .sessions
        .iter()
        .find(|s| s.submit_idx == light_idx)
        .expect("light session finished");
    assert!(
        light.wait_rounds <= 2,
        "fair share starved the light tenant: waited {} rounds",
        light.wait_rounds
    );
    // The flood itself is conserved, in arrival order among equals.
    assert_eq!(out.sessions.len(), sessions.len());
}

/// Aged priority, policy-level, against an adversary: every round a
/// fresh maximal-priority session arrives, so a static-priority policy
/// would starve the low-priority session forever. Aging must admit it
/// within `gap + 1` rounds.
#[test]
fn aged_priority_closes_any_fixed_gap() {
    let gap = 5u32;
    let mut policy = AgedPriority;
    let mut waited = 0u64;
    loop {
        let pending = [
            PendingView {
                submit_idx: 0,
                tenant: 0,
                priority: 0,
                arrival: SimTime::ZERO,
                waited_rounds: waited,
            },
            // Adversarial fresh arrival: full gap, zero age, earlier
            // submit index would win every tiebreak.
            PendingView {
                submit_idx: 1 + waited as usize,
                tenant: 1,
                priority: gap,
                arrival: SimTime::us(1 + waited),
                waited_rounds: 0,
            },
        ];
        let pick = policy.pick(&pending, SimTime::us(waited)).expect("policy must pick");
        if pick == 0 {
            break;
        }
        waited += 1;
        assert!(
            waited <= gap as u64 + 1,
            "aging failed to close a priority gap of {gap} within {} rounds",
            gap + 1
        );
    }
    // At `waited == gap` the scores tie and the earlier arrival wins,
    // so the gap closes in exactly `gap` rounds.
    assert_eq!(waited, gap as u64, "aging should admit exactly when credit matches the gap");
}

/// Fair share, policy-level, same adversary shape: a tenant with any
/// accumulated service time loses to a zero-usage tenant immediately —
/// the light tenant is picked on the first round it is visible.
#[test]
fn fair_share_prefers_unserved_tenants() {
    let mut policy = FairShare::default();
    policy.on_complete(0, SimTime::us(500));
    let pending = [
        PendingView {
            submit_idx: 0,
            tenant: 0,
            priority: 0,
            arrival: SimTime::ZERO,
            waited_rounds: 3,
        },
        PendingView {
            submit_idx: 7,
            tenant: 1,
            priority: 0,
            arrival: SimTime::us(9),
            waited_rounds: 0,
        },
    ];
    assert_eq!(policy.pick(&pending, SimTime::us(10)), Some(1), "unserved tenant must win");
}

/// Policy independence: the three policies produce different schedules
/// (that is their point) but identical per-session computed data — the
/// scheduler cannot perturb what any session computes.
#[test]
fn per_session_reports_are_policy_independent() {
    let (sessions, _) = workload();
    let runs: Vec<ServiceReport> =
        ["fifo", "fair", "aged-priority"].iter().map(|p| run(&sessions, 2, p)).collect();
    let base = &runs[0];
    for other in &runs[1..] {
        assert_eq!(other.sessions.len(), base.sessions.len());
        for (a, b) in base.sessions.iter().zip(other.sessions.iter()) {
            assert_eq!(a.submit_idx, b.submit_idx);
            assert_eq!(
                fingerprint(&a.report),
                fingerprint(&b.report),
                "session {}: policy {} changed computed data vs {}",
                a.submit_idx,
                other.policy,
                base.policy
            );
        }
    }
    // Sanity: the policies did schedule differently somewhere (admission
    // or slot assignment), or the property above is vacuous.
    let schedule = |r: &ServiceReport| -> Vec<(usize, SimTime, usize)> {
        r.sessions.iter().map(|s| (s.submit_idx, s.admitted, s.slot)).collect()
    };
    assert!(
        runs[1..].iter().any(|r| schedule(r) != schedule(&runs[0])),
        "all policies produced the same schedule; workload exercises nothing"
    );
}
