//! Property tests for trace capture & replay: randomly generated
//! iterative programs whose loop body suffers one random mutation —
//! partition, privilege, domain, or functor — partway through the
//! sequence. The mutation must invalidate, never replay stale: the
//! mutated iteration's ops may never be covered by a replayed window,
//! and replay-on vs. replay-off runs stay observationally identical
//! through the disruption. Runs on the hermetic `il-testkit` harness;
//! failures print a rerunnable `IL_TESTKIT_SEED`.
//!
//! The generated programs use two region trees (a written state region
//! and a read/reduced flux region), mirroring how the golden apps
//! separate rotating-write members from accumulating-reader members.

use il_analysis::ProjExpr;
use il_geometry::Domain;
use il_machine::SimTime;
use il_region::{
    equal_partition_1d, FieldId, FieldKind, FieldSpaceDesc, IndexPartitionId, Privilege,
    ReductionKind, RegionTreeId,
};
use il_runtime::{
    execute, expand_program, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
    RuntimeConfig, TraceMarkKind,
};
use il_testkit::prop::{check_with, i64s, map, one_of, usizes, vec_of, Config, OneOf};
use il_testkit::{prop_assert, prop_assert_eq};

const PIECES: i64 = 4;
const N: i64 = 16;
const CASES: u64 = 24;

/// One loop-body launch: a task kind plus a functor shift.
#[derive(Clone, Debug)]
enum BodyOp {
    /// rw state's block[i].
    Write,
    /// rw state's block[i], read flux's block[(i+shift) mod PIECES].
    AddShifted(u8),
    /// Reduce +1 into flux's block[(i+shift) mod PIECES].
    ReduceShifted(u8),
}

/// Which launch ingredient the mutated iteration changes. An effective
/// variant alters at least one of the mutated ops' trace keys, so a
/// captured trace must stop matching there.
#[derive(Clone, Debug)]
enum Mutation {
    /// Swap every requirement onto a finer partition.
    Partition,
    /// Demote write-like requirements from read-write to write.
    Privilege,
    /// Launch over half the domain.
    Domain,
    /// Bump every shifted functor by one.
    Functor,
}

fn body_op() -> OneOf<BodyOp> {
    one_of(vec![
        Box::new(map(i64s(0..1), |_| BodyOp::Write)),
        Box::new(map(i64s(0..PIECES), |s| BodyOp::AddShifted(s as u8))),
        Box::new(map(i64s(0..PIECES), |s| BodyOp::ReduceShifted(s as u8))),
    ])
}

fn mutation() -> OneOf<Mutation> {
    one_of(vec![
        Box::new(map(i64s(0..1), |_| Mutation::Partition)),
        Box::new(map(i64s(0..1), |_| Mutation::Privilege)),
        Box::new(map(i64s(0..1), |_| Mutation::Domain)),
        Box::new(map(i64s(0..1), |_| Mutation::Functor)),
    ])
}

/// Whether the mutation changes any launch in a body of this shape:
/// the privilege flip only touches write-like requirements, and the
/// functor bump only touches shifted functors.
fn is_effective(mutation: &Mutation, body: &[BodyOp]) -> bool {
    match mutation {
        Mutation::Partition | Mutation::Domain => true,
        Mutation::Privilege => {
            body.iter().any(|o| matches!(o, BodyOp::Write | BodyOp::AddShifted(_)))
        }
        Mutation::Functor => body.iter().any(|o| !matches!(o, BodyOp::Write)),
    }
}

struct Built {
    program: Program,
    tree_a: RegionTreeId,
    tree_b: RegionTreeId,
    fa: FieldId,
    fb: FieldId,
}

/// Build `iters` repetitions of `body`, with iteration `mutated_iter`
/// (when `Some`) altered per `mutation`. Ops 0–1 are init launches;
/// body ops follow iteration-major, so iteration `k` covers ops
/// `[2 + k*body.len(), 2 + (k+1)*body.len())`.
fn build(
    body: &[BodyOp],
    iters: usize,
    mutated_iter: Option<usize>,
    mutation: &Mutation,
) -> Built {
    let mut b = ProgramBuilder::new();
    let mut fsd_a = FieldSpaceDesc::new();
    let fa = fsd_a.add("a", FieldKind::F64);
    let fs_a = b.forest.create_field_space(fsd_a);
    let region_a = b.forest.create_region(Domain::range(N), fs_a);
    let mut fsd_b = FieldSpaceDesc::new();
    let fb = fsd_b.add("b", FieldKind::F64);
    let fs_b = b.forest.create_field_space(fsd_b);
    let region_b = b.forest.create_region(Domain::range(N), fs_b);

    let blocks_a = equal_partition_1d(&mut b.forest, region_a.space, PIECES as usize);
    let fine_a = equal_partition_1d(&mut b.forest, region_a.space, (PIECES * 2) as usize);
    let blocks_b = equal_partition_1d(&mut b.forest, region_b.space, PIECES as usize);
    let fine_b = equal_partition_1d(&mut b.forest, region_b.space, (PIECES * 2) as usize);
    let ident = b.identity_functor();
    let cost = CostSpec::Uniform(SimTime::us(40));

    let init_a = b.task("init_a", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, fa, p, p.x() as f64);
        }
    });
    let init_b = b.task("init_b", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, fb, p, (2 * p.x()) as f64);
        }
    });
    for (task, part, tree, fs) in [
        (init_a, blocks_a, region_a.tree, fs_a),
        (init_b, blocks_b, region_b.tree, fs_b),
    ] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: Domain::range(PIECES),
            reqs: vec![RegionReq {
                partition: part,
                functor: ident,
                privilege: Privilege::Write,
                fields: vec![],
                tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: cost.clone(),
            shard: None,
        });
    }

    // Tasks are registered once, outside the loop: iterations must
    // launch the *same* tasks for their trace keys to repeat, exactly
    // as the golden apps do.
    let step_w = b.task("step_w", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, fa, p);
            ctx.write(0, fa, p, v + 1.0);
        }
    });
    let step_add = b.task("step_add", move |ctx| {
        let src: Vec<f64> = ctx.domain(1).iter().map(|p| ctx.read(1, fb, p)).collect();
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for (k, p) in pts.into_iter().enumerate() {
            let v: f64 = ctx.read(0, fa, p);
            ctx.write(0, fa, p, v + src[k % src.len()]);
        }
    });
    let step_red = b.task("step_red", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.fold_f64(0, fb, p, ReductionKind::Sum, 1.0);
        }
    });

    for iter in 0..iters {
        let mutate = mutated_iter == Some(iter);
        let swap = mutate && matches!(mutation, Mutation::Partition);
        let (part_a, part_b): (IndexPartitionId, IndexPartitionId) =
            if swap { (fine_a, fine_b) } else { (blocks_a, blocks_b) };
        let pieces = if swap { PIECES * 2 } else { PIECES };
        let domain = if mutate && matches!(mutation, Mutation::Domain) {
            Domain::range(pieces / 2)
        } else {
            Domain::range(pieces)
        };
        let bump = if mutate && matches!(mutation, Mutation::Functor) { 1 } else { 0 };
        let flip = mutate && matches!(mutation, Mutation::Privilege);
        let write_priv = if flip { Privilege::Write } else { Privilege::ReadWrite };
        for op in body {
            match op {
                BodyOp::Write => {
                    b.index_launch(IndexLaunchDesc {
                        task: step_w,
                        domain: domain.clone(),
                        reqs: vec![RegionReq {
                            partition: part_a,
                            functor: ident,
                            privilege: write_priv,
                            fields: vec![fa],
                            tree: region_a.tree,
                            field_space: fs_a,
                        }],
                        scalars: vec![],
                        cost: cost.clone(),
                        shard: None,
                    });
                }
                BodyOp::AddShifted(shift) => {
                    let shifted = b.functor(ProjExpr::Modular {
                        a: 1,
                        b: *shift as i64 + bump,
                        m: pieces,
                    });
                    b.index_launch(IndexLaunchDesc {
                        task: step_add,
                        domain: domain.clone(),
                        reqs: vec![
                            RegionReq {
                                partition: part_a,
                                functor: ident,
                                privilege: write_priv,
                                fields: vec![fa],
                                tree: region_a.tree,
                                field_space: fs_a,
                            },
                            RegionReq {
                                partition: part_b,
                                functor: shifted,
                                privilege: Privilege::Read,
                                fields: vec![fb],
                                tree: region_b.tree,
                                field_space: fs_b,
                            },
                        ],
                        scalars: vec![],
                        cost: cost.clone(),
                        shard: None,
                    });
                }
                BodyOp::ReduceShifted(shift) => {
                    let shifted = b.functor(ProjExpr::Modular {
                        a: 1,
                        b: *shift as i64 + bump,
                        m: pieces,
                    });
                    b.index_launch(IndexLaunchDesc {
                        task: step_red,
                        domain: domain.clone(),
                        reqs: vec![RegionReq {
                            partition: part_b,
                            functor: shifted,
                            privilege: Privilege::Reduce(ReductionKind::Sum.id()),
                            fields: vec![fb],
                            tree: region_b.tree,
                            field_space: fs_b,
                        }],
                        scalars: vec![],
                        cost: cost.clone(),
                        shard: None,
                    });
                }
            }
        }
    }
    Built { program: b.build(), tree_a: region_a.tree, tree_b: region_b.tree, fa, fb }
}

/// Final instance data, position-indexed, for cross-config comparison.
fn extract(built: &Built, report: &il_runtime::RunReport) -> Vec<(f64, f64)> {
    let store = report.store.as_ref().unwrap();
    let forest = &built.program.forest;
    let mut out = vec![(f64::NAN, f64::NAN); N as usize];
    for (tree, field, pick) in [
        (built.tree_a, built.fa, 0usize),
        (built.tree_b, built.fb, 1),
    ] {
        let root = forest.tree_root(tree);
        for &part in &forest.space(root).partitions {
            for &space in forest.partition(part).children.values() {
                if let Some(inst) = store.get((tree, space)) {
                    for p in forest.domain(space).iter() {
                        let v = inst.get::<f64>(field, p);
                        if pick == 0 {
                            out[p.x() as usize].0 = v;
                        } else {
                            out[p.x() as usize].1 = v;
                        }
                    }
                }
            }
        }
    }
    out
}

/// The never-stale-replay property: whatever the loop body and whichever
/// ingredient mutates mid-sequence, (a) replay-on and replay-off runs
/// are observationally identical, and (b) no replayed window ever
/// covers a mutated op — the trace keys change, so the trace
/// invalidates or simply stops matching instead.
#[test]
fn mutations_invalidate_instead_of_replaying_stale() {
    check_with(
        Config::from_env("mutations_invalidate_instead_of_replaying_stale").with_cases(CASES),
        &(vec_of(body_op(), 1..4), usizes(4..8), usizes(1..3), mutation()),
        |(body, iters, mut_off, mutation)| {
            // Mutate a late iteration so earlier ones can capture+replay.
            let mutated_iter = iters.saturating_sub(*mut_off).max(1);
            let built = build(body, *iters, Some(mutated_iter), mutation);
            let cfg_on = RuntimeConfig::validate(2);
            let cfg_off = cfg_on.clone().with_trace_replay(false);

            let on = execute(&built.program, &cfg_on);
            let off = execute(&built.program, &cfg_off);
            prop_assert_eq!(on.makespan, off.makespan, "makespan differs with replay on/off");
            prop_assert_eq!(
                on.stage_json().to_string(),
                off.stage_json().to_string(),
                "stage report differs with replay on/off"
            );
            prop_assert_eq!(
                extract(&built, &on),
                extract(&built, &off),
                "final data differs with replay on/off: body={:?} iters={} mutated={} mutation={:?}",
                body,
                iters,
                mutated_iter,
                mutation
            );

            // No replayed window may cover an (effectively) mutated op.
            if is_effective(mutation, body) {
                let ex = expand_program(&built.program, &cfg_on);
                let mut_lo = 2 + mutated_iter * body.len();
                let mut_hi = mut_lo + body.len();
                for m in &ex.trace_marks {
                    if m.kind == TraceMarkKind::Replayed {
                        let (lo, hi) = (m.op as usize, m.op as usize + m.len as usize);
                        prop_assert!(
                            hi <= mut_lo || lo >= mut_hi,
                            "replayed window [{}, {}) covers mutated ops [{}, {}): \
                             body={:?} mutation={:?}",
                            lo,
                            hi,
                            mut_lo,
                            mut_hi,
                            body,
                            mutation
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// Control: the same generator without a mutation replays its steady
/// state (given enough iterations for the window to repeat), and the
/// replayed expansion is byte-identical to the fresh one — same
/// verdicts, same edges, same copies, same distribution plans.
#[test]
fn unmutated_iterations_replay_with_identical_expansions() {
    check_with(
        Config::from_env("unmutated_iterations_replay_with_identical_expansions")
            .with_cases(CASES),
        &(vec_of(body_op(), 1..4), usizes(5..9)),
        |(body, iters)| {
            let built = build(body, *iters, None, &Mutation::Functor);
            let cfg_on = RuntimeConfig::validate(2);
            let cfg_off = cfg_on.clone().with_trace_replay(false);
            let ex_on = expand_program(&built.program, &cfg_on);
            let ex_off = expand_program(&built.program, &cfg_off);
            prop_assert_eq!(&ex_on.safety, &ex_off.safety, "verdicts differ");
            prop_assert_eq!(&ex_on.deps, &ex_off.deps, "dependence edges differ");
            for (t, (c_on, c_off)) in ex_on.copies.iter().zip(&ex_off.copies).enumerate() {
                prop_assert_eq!(
                    c_on.len(),
                    c_off.len(),
                    "copy counts differ at task {}: body={:?}",
                    t,
                    body
                );
            }
            prop_assert!(
                ex_on.trace_replay.replayed > 0,
                "steady iterative sequence never replayed: body={:?} iters={} stats={:?}",
                body,
                iters,
                ex_on.trace_replay
            );
            Ok(())
        },
    );
}
