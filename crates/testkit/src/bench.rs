//! A wall-clock micro-benchmark runner.
//!
//! Replaces `criterion` for this workspace's `harness = false` bench
//! binaries. Each benchmark is timed as **median of N samples** after a
//! warmup pass; per-sample iteration counts are auto-calibrated so a
//! sample takes a measurable slice of time.
//!
//! Bench binaries run in two modes:
//!
//! * **smoke** (default) — one sample, one iteration per benchmark. This
//!   is what `cargo test -q` hits when it executes bench targets, so the
//!   suite stays fast and its exit status reflects correctness only;
//! * **full** — warmup + calibrated median-of-N timing. Selected when the
//!   binary receives `--bench` (what `cargo bench` passes) or `--full`,
//!   or when `IL_BENCH_FULL=1` is set.
//!
//! `finish()` prints an aligned table and returns the results;
//! [`BenchReport::to_json`] feeds the `BENCH_*.json` trajectory via the
//! [`crate::json`] emitter.

use crate::json::Json;
use std::time::{Duration, Instant};

/// Optional throughput annotation: elements processed per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Throughput(pub u64);

/// One benchmark's timing summary.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Benchmark id (`group/name`).
    pub name: String,
    /// Median nanoseconds per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample (ns per iteration).
    pub min_ns: f64,
    /// Slowest sample (ns per iteration).
    pub max_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters: u64,
    /// Elements per iteration, if declared.
    pub throughput: Option<u64>,
}

impl BenchReport {
    /// Elements per second at the median, if throughput was declared.
    pub fn elements_per_sec(&self) -> Option<f64> {
        self.throughput.map(|n| n as f64 / (self.median_ns * 1e-9))
    }

    /// JSON object for the `BENCH_*.json` trajectory.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .set("name", self.name.as_str())
            .set("median_ns", self.median_ns)
            .set("min_ns", self.min_ns)
            .set("max_ns", self.max_ns)
            .set("samples", self.samples)
            .set("iters", self.iters);
        if let Some(eps) = self.elements_per_sec() {
            obj = obj.set("elements_per_sec", eps);
        }
        obj
    }
}

/// The benchmark runner: collects [`BenchReport`]s for a binary.
pub struct BenchRunner {
    group: String,
    full: bool,
    samples: usize,
    warmup: Duration,
    target_sample: Duration,
    filter: Option<String>,
    results: Vec<BenchReport>,
}

impl BenchRunner {
    /// A runner in smoke mode (override with [`BenchRunner::full`]).
    pub fn new(group: &str) -> Self {
        BenchRunner {
            group: group.to_string(),
            full: false,
            samples: 11,
            warmup: Duration::from_millis(100),
            target_sample: Duration::from_millis(20),
            filter: None,
            results: Vec::new(),
        }
    }

    /// A runner configured from the process arguments and environment:
    /// full mode on `--bench`/`--full`/`IL_BENCH_FULL=1`, with any bare
    /// argument used as a substring filter on benchmark names.
    pub fn from_args(group: &str) -> Self {
        let mut runner = BenchRunner::new(group);
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--full" => runner.full = true,
                // libtest-style flags that may be forwarded; ignore.
                s if s.starts_with('-') => {}
                s => runner.filter = Some(s.to_string()),
            }
        }
        if std::env::var("IL_BENCH_FULL").is_ok_and(|v| v == "1") {
            runner.full = true;
        }
        runner
    }

    /// Force full (measured) mode.
    pub fn full(mut self) -> Self {
        self.full = true;
        self
    }

    /// Set the number of samples for full mode (median-of-N).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f`, reporting median-of-N ns per call.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) {
        self.bench_inner(name, None, f);
    }

    /// [`BenchRunner::bench`] with a throughput annotation (elements per
    /// call), so the report includes elements/second.
    pub fn bench_throughput<T>(&mut self, name: &str, elements: Throughput, f: impl FnMut() -> T) {
        self.bench_inner(name, Some(elements.0), f);
    }

    fn bench_inner<T>(&mut self, name: &str, throughput: Option<u64>, mut f: impl FnMut() -> T) {
        let id = format!("{}/{}", self.group, name);
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let report = if self.full {
            self.measure(&id, throughput, &mut f)
        } else {
            // Smoke: run once so the benchmark body is exercised (and its
            // internal assertions checked), but don't spend time on it.
            let start = Instant::now();
            std::hint::black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            BenchReport {
                name: id,
                median_ns: ns,
                min_ns: ns,
                max_ns: ns,
                samples: 1,
                iters: 1,
                throughput,
            }
        };
        self.results.push(report);
    }

    fn measure<T>(
        &self,
        id: &str,
        throughput: Option<u64>,
        f: &mut impl FnMut() -> T,
    ) -> BenchReport {
        // Warmup, timing one call to seed calibration.
        let mut one_call_ns = f64::INFINITY;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(f());
            one_call_ns = one_call_ns.min(t.elapsed().as_nanos() as f64);
            if warmup_start.elapsed() >= self.warmup {
                break;
            }
        }
        // Iterations per sample: enough to fill the target sample time.
        let target_ns = self.target_sample.as_nanos() as f64;
        let iters = ((target_ns / one_call_ns.max(1.0)).ceil() as u64).clamp(1, 1_000_000);
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        BenchReport {
            name: id.to_string(),
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
            samples: self.samples,
            iters,
            throughput,
        }
    }

    /// Print the report table and return the results.
    pub fn finish(self) -> Vec<BenchReport> {
        let mode = if self.full { "full" } else { "smoke" };
        println!("bench group '{}' ({mode} mode, {} benchmarks)", self.group, self.results.len());
        let width = self.results.iter().map(|r| r.name.len()).max().unwrap_or(0);
        for r in &self.results {
            let tput = r
                .elements_per_sec()
                .map(|e| format!("  {:>12.3e} elem/s", e))
                .unwrap_or_default();
            println!(
                "  {:width$}  median {}  (min {}, max {}, {} x {} iters){tput}",
                r.name,
                fmt_ns(r.median_ns),
                fmt_ns(r.min_ns),
                fmt_ns(r.max_ns),
                r.samples,
                r.iters,
            );
        }
        self.results
    }
}

/// A before/after wall-clock comparison between two implementations of
/// the same work. Used by the `BENCH_*.json` trajectories to pin the
/// speedup a PR claims (e.g. a reference check vs. its word-parallel
/// fast path) next to the raw numbers that justify it.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Comparison id (`group/name`).
    pub name: String,
    /// Baseline wall-clock per call (ns, best of samples).
    pub baseline_ns: f64,
    /// Candidate wall-clock per call (ns, best of samples).
    pub candidate_ns: f64,
    /// Samples taken per side.
    pub samples: usize,
}

impl Comparison {
    /// Time `baseline` and `candidate`, alternating sides so ambient
    /// noise lands on both, and keep the best sample of each (wall-clock
    /// noise is one-sided: anything slower than the minimum is
    /// interference, not the code).
    pub fn measure<A, B>(
        name: &str,
        samples: usize,
        mut baseline: impl FnMut() -> A,
        mut candidate: impl FnMut() -> B,
    ) -> Comparison {
        let samples = samples.max(1);
        let mut base_ns = f64::INFINITY;
        let mut cand_ns = f64::INFINITY;
        for _ in 0..samples {
            let t = Instant::now();
            std::hint::black_box(baseline());
            base_ns = base_ns.min(t.elapsed().as_nanos() as f64);
            let t = Instant::now();
            std::hint::black_box(candidate());
            cand_ns = cand_ns.min(t.elapsed().as_nanos() as f64);
        }
        Comparison {
            name: name.to_string(),
            baseline_ns: base_ns,
            candidate_ns: cand_ns,
            samples,
        }
    }

    /// How many times faster the candidate is than the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.candidate_ns.max(1.0)
    }

    /// JSON object for the `BENCH_*.json` trajectory.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("baseline_ns", self.baseline_ns)
            .set("candidate_ns", self.candidate_ns)
            .set("speedup", self.speedup())
            .set("samples", self.samples)
    }

    /// One human-readable summary line.
    pub fn render(&self) -> String {
        format!(
            "  {}: {} -> {}  ({:.2}x)",
            self.name,
            fmt_ns(self.baseline_ns),
            fmt_ns(self.candidate_ns),
            self.speedup()
        )
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_once() {
        let mut calls = 0u32;
        let mut runner = BenchRunner::new("g");
        runner.bench("a", || calls += 1);
        let out = runner.finish();
        assert_eq!(calls, 1);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].name, "g/a");
        assert_eq!(out[0].iters, 1);
    }

    #[test]
    fn full_mode_reports_ordered_stats() {
        let mut runner = BenchRunner::new("g").full().samples(5);
        runner.warmup = Duration::from_millis(1);
        runner.target_sample = Duration::from_micros(50);
        runner.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..100u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        let out = runner.finish();
        let r = &out[0];
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert!(r.min_ns > 0.0);
        assert_eq!(r.samples, 5);
        assert!(r.iters >= 1);
    }

    #[test]
    fn throughput_reported() {
        let mut runner = BenchRunner::new("g");
        runner.bench_throughput("t", Throughput(1000), || 42);
        let out = runner.finish();
        let eps = out[0].elements_per_sec().unwrap();
        assert!(eps > 0.0);
        let json = out[0].to_json().to_string();
        assert!(json.contains("elements_per_sec"), "{json}");
    }

    #[test]
    fn comparison_measures_both_sides() {
        let cmp = Comparison::measure(
            "g/fast_vs_slow",
            3,
            || {
                let mut acc = 0u64;
                for i in 0..20_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                acc
            },
            || 42u64,
        );
        assert!(cmp.baseline_ns > 0.0 && cmp.candidate_ns > 0.0);
        assert!(cmp.speedup() > 0.0);
        assert_eq!(cmp.samples, 3);
        let json = cmp.to_json().to_string();
        assert!(json.contains("speedup"), "{json}");
        assert!(cmp.render().contains("g/fast_vs_slow"));
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut runner = BenchRunner::new("g");
        runner.filter = Some("keep".into());
        let mut ran = false;
        runner.bench("keep_this", || ran = true);
        runner.bench("drop_this", || panic!("filtered out"));
        let out = runner.finish();
        assert!(ran);
        assert_eq!(out.len(), 1);
    }
}
