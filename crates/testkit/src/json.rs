//! A tiny JSON value type and emitter.
//!
//! Replaces `serde_json` for results output (`BENCH_*.json`, figure and
//! table dumps). Object keys keep insertion order so emitted files are
//! stable across runs — important for diffing benchmark trajectories.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values emit as `null`, matching
    /// `serde_json`'s behavior for f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) `key` in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => {
                let value = value.into();
                if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                    slot.1 = value;
                } else {
                    fields.push((key.to_string(), value));
                }
                self
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
    }

    /// Emit compact JSON.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Emit pretty-printed JSON with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 1e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, depth + 1)
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_emit() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(3.5).to_string(), "3.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let j = Json::obj().set("zeta", 1u64).set("alpha", 2u64).set("zeta", 3u64);
        assert_eq!(j.to_string(), r#"{"zeta":3,"alpha":2}"#);
    }

    #[test]
    fn arrays_and_nesting() {
        let j = Json::obj()
            .set("points", vec![1.5f64, 2.0, 3.25])
            .set("meta", Json::obj().set("name", "fig5"));
        assert_eq!(
            j.to_string(),
            r#"{"points":[1.5,2,3.25],"meta":{"name":"fig5"}}"#
        );
    }

    #[test]
    fn pretty_printing_is_indented() {
        let j = Json::obj().set("a", vec![1u64, 2]);
        let s = j.to_string_pretty();
        assert_eq!(s, "{\n  \"a\": [\n    1,\n    2\n  ]\n}\n");
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{1}".into());
        assert_eq!(j.to_string(), "\"\\u0001\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).to_string(), "[]");
        assert_eq!(Json::obj().to_string(), "{}");
        assert_eq!(Json::obj().to_string_pretty(), "{}\n");
    }
}
