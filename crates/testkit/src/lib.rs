//! Hermetic test infrastructure for the index-launch workspace.
//!
//! This environment has no registry access, so the workspace builds with
//! **zero external crates**. This crate supplies, on `std` alone, the
//! pieces that third-party dev-dependencies used to provide:
//!
//! * [`rng`] — a deterministic [`SplitMix64`](rng::SplitMix64) seeder and
//!   [`TestRng`](rng::TestRng) (xoshiro256\*\*) generator, replacing
//!   `rand`;
//! * [`prop`] — a property-testing harness with composable generators,
//!   configurable case counts, printed failing seeds, and greedy
//!   shrinking, replacing `proptest`;
//! * [`json`] — a tiny JSON value type and emitter, replacing
//!   `serde`/`serde_json` for bench and results output;
//! * [`bench`] — a wall-clock micro-benchmark runner with warmup and
//!   median-of-N reporting, replacing `criterion`.
//!
//! Everything is deterministic: a failing property prints its seed and
//! case index, and setting `IL_TESTKIT_SEED` reruns the exact failing
//! sequence.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod json;
pub mod prop;
pub mod rng;

pub use bench::{BenchReport, BenchRunner, Comparison, Throughput};
pub use json::Json;
pub use prop::{check, check_with, Config, Gen};
pub use rng::{SplitMix64, TestRng};
