//! A minimal deterministic property-testing harness.
//!
//! Replaces `proptest` for this workspace. A property is a function from
//! a generated input to `Result<(), String>`; the harness runs it over
//! `cases` deterministic inputs, and on failure **greedily shrinks** the
//! input (repeatedly taking the first simpler candidate that still fails)
//! before panicking with the minimal input, the failing seed, and the
//! exact environment variables that rerun the failure:
//!
//! ```text
//! property 'split_partitions_rect' failed (case 13, seed 0x3c6ef372fe94f82a)
//! minimal input: ((0, 0, 3, 0), 2)
//! error: assertion failed: total == r.volume()
//! rerun: IL_TESTKIT_SEED=0x3c6ef372fe94f82a cargo test -p <crate> split_partitions_rect
//! ```
//!
//! * `IL_TESTKIT_SEED` — base seed (hex with `0x` prefix, or decimal).
//!   Defaults to a stable hash of the property name, so every run of a
//!   given suite explores the same sequence.
//! * `IL_TESTKIT_CASES` — number of cases per property (default 48).
//!
//! Generators implement [`Gen`]: `generate` draws a value from a
//! [`TestRng`], `shrink` proposes strictly simpler candidates. Tuples of
//! generators are generators (component-wise shrinking), and
//! [`vec_of`] shrinks both the length and the elements.

use crate::rng::{SplitMix64, TestRng};
use std::fmt::Debug;
use std::ops::Range;

/// A value generator with optional shrinking.
pub trait Gen {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Strictly simpler candidates for `v` (empty = fully shrunk). Every
    /// candidate must itself be a value this generator could produce.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Harness configuration for one property.
#[derive(Clone, Debug)]
pub struct Config {
    /// Property name (used in messages and the default seed).
    pub name: String,
    /// Number of cases to run.
    pub cases: u64,
    /// Base seed; case `i` runs with `SplitMix64::mix(seed, i)`.
    pub seed: u64,
    /// Cap on total shrinking steps.
    pub max_shrink_steps: u32,
}

impl Config {
    /// Default configuration for `name`, honoring `IL_TESTKIT_SEED` and
    /// `IL_TESTKIT_CASES`.
    pub fn from_env(name: &str) -> Self {
        let seed = std::env::var("IL_TESTKIT_SEED")
            .ok()
            .and_then(|s| parse_u64(&s))
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        let cases = std::env::var("IL_TESTKIT_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(48);
        Config { name: name.to_string(), cases, seed, max_shrink_steps: 2000 }
    }

    /// Override the case count.
    pub fn with_cases(mut self, cases: u64) -> Self {
        self.cases = cases;
        self
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `prop` over `cases` generated inputs with the default config.
/// Panics (with seed, case index, and minimal shrunk input) on failure.
pub fn check<G, P>(name: &str, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    check_with(Config::from_env(name), gen, prop)
}

/// [`check`] with an explicit configuration.
pub fn check_with<G, P>(config: Config, gen: &G, prop: P)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    for case in 0..config.cases {
        let case_seed = SplitMix64::mix(config.seed, case);
        let mut rng = TestRng::seed_from_u64(case_seed);
        let input = gen.generate(&mut rng);
        if let Err(err) = prop(&input) {
            let (minimal, minimal_err, steps) =
                shrink_failure(gen, &prop, input.clone(), err, config.max_shrink_steps);
            panic!(
                "property '{name}' failed (case {case}, seed {seed:#018x})\n\
                 minimal input: {minimal:?}\n\
                 original input: {input:?}\n\
                 error: {minimal_err}\n\
                 (shrunk in {steps} steps)\n\
                 rerun: IL_TESTKIT_SEED={seed:#x} IL_TESTKIT_CASES={cases} cargo test {name}",
                name = config.name,
                seed = config.seed,
                cases = config.cases,
            );
        }
    }
}

/// Greedy shrink: repeatedly replace the failing input with the first
/// shrink candidate that still fails, until none does or the step budget
/// runs out.
fn shrink_failure<G, P>(
    gen: &G,
    prop: &P,
    mut current: G::Value,
    mut current_err: String,
    budget: u32,
) -> (G::Value, String, u32)
where
    G: Gen,
    P: Fn(&G::Value) -> Result<(), String>,
{
    let mut steps = 0u32;
    'outer: while steps < budget {
        for candidate in gen.shrink(&current) {
            steps += 1;
            if steps >= budget {
                break 'outer;
            }
            if let Err(err) = prop(&candidate) {
                current = candidate;
                current_err = err;
                continue 'outer;
            }
        }
        break;
    }
    (current, current_err, steps)
}

/// Assert inside a property, returning an `Err` (so the harness can
/// shrink) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)*)
            ));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{} == {}` ({}:{})\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                a,
                b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: `{} == {}` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                file!(),
                line!(),
                format!($($fmt)*),
                a,
                b
            ));
        }
    }};
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// Uniform `i64` in a half-open range, shrinking toward the low bound.
#[derive(Clone, Debug)]
pub struct I64Range {
    lo: i64,
    hi: i64,
}

/// `i64` values in `range`, shrinking toward `range.start`.
pub fn i64s(range: Range<i64>) -> I64Range {
    assert!(range.start < range.end, "empty range");
    I64Range { lo: range.start, hi: range.end }
}

impl Gen for I64Range {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.gen_range_i64(self.lo, self.hi)
    }

    fn shrink(&self, v: &i64) -> Vec<i64> {
        // Toward lo: the bound itself, the midpoint, one step down.
        let mut out = Vec::new();
        for c in [self.lo, self.lo + (v - self.lo) / 2, v - 1] {
            if c < *v && c >= self.lo && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

/// Uniform `usize` in a half-open range, shrinking toward the low bound.
#[derive(Clone, Debug)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// `usize` values in `range`, shrinking toward `range.start`.
pub fn usizes(range: Range<usize>) -> UsizeRange {
    assert!(range.start < range.end, "empty range");
    UsizeRange { lo: range.start, hi: range.end }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.gen_range_usize(self.lo, self.hi)
    }

    fn shrink(&self, v: &usize) -> Vec<usize> {
        let mut out = Vec::new();
        for c in [self.lo, self.lo + (v - self.lo) / 2, v.saturating_sub(1)] {
            if c < *v && c >= self.lo && !out.contains(&c) {
                out.push(c);
            }
        }
        out
    }
}

/// Uniform `f64` in a half-open range, shrinking toward the low bound.
#[derive(Clone, Debug)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// `f64` values in `range`, shrinking toward `range.start`.
pub fn f64s(range: Range<f64>) -> F64Range {
    assert!(range.start < range.end, "empty range");
    F64Range { lo: range.start, hi: range.end }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range_f64(self.lo, self.hi)
    }

    fn shrink(&self, v: &f64) -> Vec<f64> {
        let mid = self.lo + (v - self.lo) / 2.0;
        [self.lo, mid]
            .into_iter()
            .filter(|c| c < v)
            .collect()
    }
}

/// Uniform `bool`, shrinking `true` to `false`.
#[derive(Clone, Debug)]
pub struct AnyBool;

/// `bool` values; `true` shrinks to `false`.
pub fn bools() -> AnyBool {
    AnyBool
}

impl Gen for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }

    fn shrink(&self, v: &bool) -> Vec<bool> {
        if *v { vec![false] } else { Vec::new() }
    }
}

/// Always the same value (no shrinking).
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Vectors of `elem` with length in `len`, shrinking by dropping chunks,
/// dropping single elements, and shrinking individual elements.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    elem: G,
    min: usize,
    max: usize,
}

/// `Vec<G::Value>` with length in `len` (half-open).
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen { elem, min: len.start, max: len.end }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<G::Value> {
        let n = rng.gen_range_usize(self.min, self.max);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out: Vec<Vec<G::Value>> = Vec::new();
        // Halve the vector (front and back halves).
        if v.len() / 2 >= self.min && v.len() > 1 {
            out.push(v[..v.len() / 2].to_vec());
            out.push(v[v.len() - v.len() / 2..].to_vec());
        }
        // Drop one element.
        if v.len() > self.min {
            for i in 0..v.len() {
                let mut smaller = v.clone();
                smaller.remove(i);
                out.push(smaller);
            }
        }
        // Shrink one element in place (first candidate per slot).
        for i in 0..v.len() {
            for cand in self.elem.shrink(&v[i]) {
                let mut copy = v.clone();
                copy[i] = cand;
                out.push(copy);
            }
        }
        out
    }
}

/// Choose uniformly among boxed generators of the same value type. No
/// shrinking across branches (a candidate must stay producible, and the
/// producing branch is not recorded).
pub struct OneOf<T> {
    gens: Vec<Box<dyn Gen<Value = T>>>,
}

/// Uniform choice among `gens`.
pub fn one_of<T: Clone + Debug>(gens: Vec<Box<dyn Gen<Value = T>>>) -> OneOf<T> {
    assert!(!gens.is_empty(), "one_of of nothing");
    OneOf { gens }
}

impl<T: Clone + Debug> Gen for OneOf<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let k = rng.gen_range_usize(0, self.gens.len());
        self.gens[k].generate(rng)
    }
}

/// Map a generator's output through `f` (shrinking is not preserved —
/// prefer generating primitives and mapping inside the property when
/// shrinking matters).
pub struct Mapped<G, F> {
    inner: G,
    f: F,
}

/// `f` applied to values of `inner`.
pub fn map<G, T, F>(inner: G, f: F) -> Mapped<G, F>
where
    G: Gen,
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    Mapped { inner, f }
}

impl<G, T, F> Gen for Mapped<G, F>
where
    G: Gen,
    T: Clone + Debug,
    F: Fn(G::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_tuple_gen {
    ($($g:ident : $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = cand;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

impl_tuple_gen!(A: 0, B: 1);
impl_tuple_gen!(A: 0, B: 1, C: 2);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_gen!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let seen = std::cell::Cell::new(0u64);
        check_with(
            Config::from_env("always_passes").with_cases(32),
            &i64s(0..100),
            |v| {
                seen.set(seen.get() + 1);
                prop_assert!(*v < 100);
                Ok(())
            },
        );
        assert_eq!(seen.get(), 32);
    }

    #[test]
    fn failure_is_shrunk_to_minimum() {
        // Property fails for v >= 10; minimal failing input is 10.
        let caught = std::panic::catch_unwind(|| {
            check_with(
                Config::from_env("shrinks_to_ten").with_cases(200),
                &i64s(0..1000),
                |v| {
                    prop_assert!(*v < 10, "got {v}");
                    Ok(())
                },
            );
        });
        let msg = match caught {
            Err(e) => *e.downcast::<String>().expect("panic payload"),
            Ok(()) => panic!("property should have failed"),
        };
        assert!(msg.contains("minimal input: 10"), "{msg}");
        assert!(msg.contains("IL_TESTKIT_SEED="), "{msg}");
        assert!(msg.contains("seed 0x"), "{msg}");
    }

    #[test]
    fn failure_is_deterministic_for_fixed_seed() {
        let run = || {
            std::panic::catch_unwind(|| {
                let mut config = Config::from_env("deterministic_failure");
                config.seed = 0xDEAD_BEEF;
                config.cases = 100;
                check_with(config, &vec_of(i64s(0..50), 1..10), |v| {
                    let sum: i64 = v.iter().sum();
                    prop_assert!(sum < 40, "sum {sum}");
                    Ok(())
                });
            })
            .err()
            .and_then(|e| e.downcast::<String>().ok())
            .map(|b| *b)
            .expect("should fail")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let gen = vec_of(i64s(0..5), 2..6);
        let v = vec![1, 2, 3];
        for cand in gen.shrink(&v) {
            assert!(cand.len() >= 2, "{cand:?}");
        }
    }

    #[test]
    fn tuple_shrink_is_componentwise() {
        let gen = (i64s(0..10), bools());
        let candidates = gen.shrink(&(7, true));
        assert!(candidates.contains(&(0, true)));
        assert!(candidates.contains(&(7, false)));
        // No candidate changes both components at once.
        for (n, b) in &candidates {
            assert!(*n == 7 || *b);
        }
    }

    #[test]
    fn one_of_draws_all_branches() {
        let gen = one_of::<i64>(vec![
            Box::new(Just(1i64)),
            Box::new(Just(2i64)),
            Box::new(i64s(10..20)),
        ]);
        let mut rng = TestRng::seed_from_u64(5);
        let mut saw = [false; 3];
        for _ in 0..200 {
            match gen.generate(&mut rng) {
                1 => saw[0] = true,
                2 => saw[1] = true,
                10..=19 => saw[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert_eq!(saw, [true; 3]);
    }

    #[test]
    fn mapped_generator_applies_function() {
        let gen = map(i64s(0..10), |v| v * 2);
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..50 {
            let v = gen.generate(&mut rng);
            assert_eq!(v % 2, 0);
            assert!((0..20).contains(&v));
        }
    }

    #[test]
    fn seed_parse_forms() {
        assert_eq!(parse_u64("0xff"), Some(255));
        assert_eq!(parse_u64("255"), Some(255));
        assert_eq!(parse_u64("0Xff"), Some(255));
        assert_eq!(parse_u64("zzz"), None);
    }
}
