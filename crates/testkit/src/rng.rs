//! Deterministic pseudo-random number generation.
//!
//! [`SplitMix64`] is the canonical 64-bit state-advance generator used to
//! seed larger generators (and to derive independent streams from a base
//! seed, which the property harness uses for per-case seeds).
//! [`TestRng`] is xoshiro256\*\*, a fast, well-distributed generator whose
//! entire state is reproducible from a single `u64` seed.
//!
//! Neither is cryptographic; both are bit-for-bit reproducible across
//! platforms, which is what hermetic tests need.

/// SplitMix64: one `u64` of state, one multiply-xorshift per output.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Derive the `n`-th independent sub-seed of this stream without
    /// perturbing it — `mix(seed, n)` is a pure function, so the property
    /// harness can jump straight to any case index.
    pub fn mix(seed: u64, n: u64) -> u64 {
        let mut s = SplitMix64::new(seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F));
        s.next_u64()
    }
}

/// xoshiro256\*\*: 256 bits of state, seeded via SplitMix64.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed the generator. Any seed (including 0) is valid: the state is
    /// expanded through SplitMix64, which never yields the all-zero state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        TestRng { s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()] }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform `u64` below `bound` (Lemire-style widening multiply with
    /// rejection, so the distribution is exactly uniform).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `i64` in the half-open range `lo..hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.next_below(span) as i64)
    }

    /// Uniform `usize` in the half-open range `lo..hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in the half-open range `lo..hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: true with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs of SplitMix64 from seed 1234567.
        let mut s = SplitMix64::new(1234567);
        let a = s.next_u64();
        let b = s.next_u64();
        assert_ne!(a, b);
        // Deterministic across runs.
        let mut s2 = SplitMix64::new(1234567);
        assert_eq!(s2.next_u64(), a);
        assert_eq!(s2.next_u64(), b);
    }

    #[test]
    fn mix_is_pure_and_spread() {
        let a = SplitMix64::mix(42, 0);
        let b = SplitMix64::mix(42, 1);
        assert_eq!(a, SplitMix64::mix(42, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(99);
        let mut b = TestRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range_i64(-20, 20);
            assert!((-20..20).contains(&v));
            let u = rng.gen_range_usize(3, 9);
            assert!((3..9).contains(&u));
            let f = rng.gen_range_f64(0.0, 9.0);
            assert!((0.0..9.0).contains(&f));
        }
    }

    #[test]
    fn full_i64_range_supported() {
        let mut rng = TestRng::seed_from_u64(8);
        for _ in 0..1000 {
            let v = rng.gen_range_i64(i64::MIN, i64::MAX);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn bool_probability_roughly_respected() {
        let mut rng = TestRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "{hits}");
    }

    #[test]
    fn next_below_uniformity_smoke() {
        let mut rng = TestRng::seed_from_u64(3);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.next_below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }
}
