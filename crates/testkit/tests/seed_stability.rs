//! Shrinker seed stability: with a pinned `IL_TESTKIT_SEED`, a failing
//! property must produce a *byte-identical* failure report — same case,
//! same shrink trajectory, same minimal counterexample — across repeated
//! runs. This is what makes the "rerun: IL_TESTKIT_SEED=…" line in every
//! failure actionable: replaying the seed replays the exact failure.

use il_testkit::prop::{i64s, vec_of};
use il_testkit::{check, prop_assert};

/// Run the deliberately failing property once and capture its panic
/// message (the full failure report, including the shrunk minimal
/// input).
fn failing_report() -> String {
    std::panic::catch_unwind(|| {
        check("seed_stability_demo", &vec_of(i64s(0..100), 1..12), |v| {
            let sum: i64 = v.iter().sum();
            prop_assert!(sum < 120, "sum {sum} exceeds budget");
            Ok(())
        });
    })
    .err()
    .and_then(|e| e.downcast::<String>().ok())
    .map(|b| *b)
    .expect("property must fail under this seed")
}

#[test]
fn same_env_seed_gives_byte_identical_minimal_counterexample() {
    // Pin the environment the way a user replaying a failure would.
    // (Single #[test] in this binary: no parallel test races on env.)
    std::env::set_var("IL_TESTKIT_SEED", "0xFAB5EED");
    std::env::set_var("IL_TESTKIT_CASES", "64");

    let first = failing_report();
    let second = failing_report();
    assert_eq!(first, second, "failure report drifted between identical runs");

    // The report names the pinned seed and a shrunk minimal input.
    assert!(first.contains("0x000000000fab5eed"), "report lacks the seed:\n{first}");
    let minimal = first
        .lines()
        .find(|l| l.starts_with("minimal input:"))
        .unwrap_or_else(|| panic!("report lacks a minimal input line:\n{first}"));
    assert_eq!(
        minimal,
        second
            .lines()
            .find(|l| l.starts_with("minimal input:"))
            .expect("second report lacks a minimal input line"),
        "minimal counterexamples differ"
    );

    // And the shrinker actually minimized: the reported counterexample
    // must itself still fail and be locally minimal in length (a vec of
    // sum >= 120 with elements < 100 needs at least two elements).
    let inner = minimal.trim_start_matches("minimal input:").trim();
    let parsed: Vec<i64> = inner
        .trim_start_matches('[')
        .trim_end_matches(']')
        .split(',')
        .map(|s| s.trim().parse().expect("minimal input parses back"))
        .collect();
    assert!(parsed.iter().sum::<i64>() >= 120, "minimal input is not a counterexample");
    assert!(parsed.len() >= 2, "impossible length for this property: {parsed:?}");
}
