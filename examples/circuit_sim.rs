//! Circuit simulation: validate a small unstructured circuit against the
//! sequential reference, then sweep the weak-scaling experiment on the
//! simulated machine (a slice of Figure 5).
//!
//! ```text
//! cargo run --release --example circuit_sim
//! ```

use index_launch::apps::circuit;
use index_launch::prelude::*;

fn main() {
    // ---- Part 1: correctness on a real (small) circuit ----
    let tiny = circuit::CircuitConfig::tiny(4);
    let app = circuit::build(&tiny);
    let report = execute(&app.program, &RuntimeConfig::validate(4));
    let got = circuit::extract_voltages(&app, &report);
    let want = circuit::reference(&tiny, &app.wires);
    let max_err = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "validation: {} pieces, {} wires, {} tasks, max |voltage error| = {max_err:.2e}",
        tiny.pieces,
        tiny.total_wires(),
        report.tasks
    );
    assert!(max_err < 1e-9);

    // ---- Part 2: weak scaling with and without index launches ----
    println!("\nweak scaling (2e5 wires/node), per-node throughput:");
    println!("{:>8} {:>16} {:>16}", "nodes", "DCR+IDX", "DCR no IDX");
    for nodes in [1usize, 16, 64, 256, 1024] {
        let config = circuit::CircuitConfig::weak(nodes, 1);
        let mut row = format!("{nodes:>8}");
        for idx in [true, false] {
            let app = circuit::build(&config);
            let rt = RuntimeConfig::scale(nodes).with_axes(true, idx);
            let report = execute(&app.program, &rt);
            let per_node = circuit::throughput(&config, &report) / nodes as f64;
            row.push_str(&format!(" {:>13.2}M/s", per_node / 1e6));
        }
        println!("{row}");
    }
    println!("\n(index launches keep the issuance stream O(1) per launch; without\n them every node replays O(nodes) individual task launches per step)");
}
