//! DOM radiation sweeps: the paper's showcase for *non-trivial projection
//! functors* (§6.2.3).
//!
//! Sweep launches iterate over 3-D diagonal wavefront slices of the tile
//! grid; their flux-exchange arguments project each tile (x,y,z) onto 2-D
//! planes (y,z), (x,z), (x,y). The static analyzer cannot decide
//! injectivity of those swizzles over a sparse slice — the dynamic
//! bitmask check proves it at O(|D|) cost, which this example makes
//! visible and then elides (as Figure 10 does).
//!
//! ```text
//! cargo run --release --example dom_sweep
//! ```

use index_launch::apps::soleil;
use index_launch::prelude::*;

fn main() {
    let tiles = (3, 3, 2);
    // Show the wavefront structure for the (+x,+y,+z) octant.
    println!("wavefront slices of a {tiles:?} tile grid, octant (+,+,+):");
    for (w, slice) in soleil::wavefronts(tiles, (1, 1, 1)).iter().enumerate() {
        let pts: Vec<String> = slice.iter().map(|p| format!("{p}")).collect();
        println!("  w={w}: {}", pts.join(" "));
    }

    // The safety analysis of one sweep launch, spelled out.
    let config = soleil::SoleilConfig::tiny(tiles);
    let app = soleil::build(&config);
    println!(
        "\nprogram: {} launches, {} point tasks",
        app.program.ops.len(),
        app.program.total_tasks()
    );

    // Run with checks on and off: identical data, different issuance cost.
    let with_checks = execute(&app.program, &RuntimeConfig::validate(4));
    let u_checked = soleil::extract_u(&app, &with_checks);
    let app2 = soleil::build(&config);
    let without = execute(&app2.program, &RuntimeConfig::validate(4).with_dynamic_checks(false));
    let u_unchecked = soleil::extract_u(&app2, &without);
    assert_eq!(u_checked, u_unchecked);

    let reference = soleil::reference(&config);
    let max_err = u_checked
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("max |u error| vs sequential reference: {max_err:.2e}");
    assert!(max_err < 1e-12);

    println!(
        "dynamic-check cost: {} (checks on) vs {} (disabled) — the checks\n\
         verified every sweep launch and cost {} of simulated time",
        with_checks.dynamic_check_time,
        without.dynamic_check_time,
        with_checks.dynamic_check_time,
    );
    println!(
        "simulated makespan: {} (on) vs {} (off) — negligible, as in Figure 10",
        with_checks.makespan, without.makespan
    );
}
