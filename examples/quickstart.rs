//! Quickstart: build a tiny program with two index launches, let the
//! loop optimizer explain its decisions, and run it on a simulated
//! 4-node machine.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use index_launch::compiler::{optimize_loop, RegionArg, TaskLoop};
use index_launch::prelude::*;

fn main() {
    // A 100-element collection with one f64 field, partitioned 4 ways.
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let val = fsd.add("val", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(100), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 4);

    // Two tasks: fill every element, then double it.
    let fill = b.task("fill", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, val, p, p.x() as f64);
        }
    });
    let double = b.task("double", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, val, p);
            ctx.write(0, val, p, 2.0 * v);
        }
    });

    // Ask the compiler pass what it thinks of the loops first — this is
    // the §4 walkthrough with diagnostics.
    for (name, functor) in [
        ("fill", ProjExpr::Identity),
        ("bad", ProjExpr::Modular { a: 1, b: 0, m: 3 }), // Listing 2's i%3
    ] {
        let l = TaskLoop {
            task_name: name.into(),
            domain: Domain::range(4),
            args: vec![RegionArg {
                name: "p".into(),
                partition: blocks,
                functor,
                privilege: Privilege::ReadWrite,
                fields: vec![],
                tree: region.tree,
                field_space: fs,
            }],
            body: vec![],
        };
        println!("loop `{l}`:\n{}", optimize_loop(&b.forest, &l));
    }

    // forall(D, T, ⟨P, λi.i⟩): the paper's Listing 1, first loop.
    Forall::new(fill, Domain::range(4))
        .arg(blocks, ProjExpr::Identity, Privilege::Write, region.tree, fs)
        .cost(SimTime::us(100))
        .launch(&mut b);
    Forall::new(double, Domain::range(4))
        .arg(blocks, ProjExpr::Identity, Privilege::ReadWrite, region.tree, fs)
        .cost(SimTime::us(100))
        .launch(&mut b);

    let program = b.build();
    let report = execute(&program, &RuntimeConfig::validate(4));
    println!(
        "ran {} point tasks on 4 simulated nodes in {} simulated time \
         ({} cross-node messages, {} bytes moved)",
        report.tasks, report.makespan, report.messages, report.bytes
    );

    // Read a value back: element 42 was filled with 42 then doubled.
    let store = report.store.expect("validation mode");
    let root = program.forest.tree_root(region.tree);
    let part = program.forest.space(root).partitions[0];
    let p42 = index_launch::geometry::DomainPoint::new1(42);
    for &space in program.forest.partition(part).children.values() {
        if program.forest.domain(space).contains(p42) {
            let inst = store.get((region.tree, space)).unwrap();
            let v: f64 = inst.get(val, p42);
            println!("element 42 = {v} (expected 84)");
            assert_eq!(v, 84.0);
        }
    }
}
