//! PRK 2-D stencil: validate against the sequential reference, then
//! compare all four (DCR × IDX) runtime configurations at one weak-scaling
//! point (a column of Figure 8).
//!
//! ```text
//! cargo run --release --example stencil_scaling
//! ```

use index_launch::apps::stencil;
use index_launch::prelude::*;

fn main() {
    // ---- Correctness ----
    let tiny = stencil::StencilConfig::tiny((2, 3));
    let app = stencil::build(&tiny);
    let report = execute(&app.program, &RuntimeConfig::validate(6));
    let got = stencil::extract_fout(&app, &report);
    let want = stencil::reference(&tiny);
    let max_err = got
        .iter()
        .zip(&want)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "validation: {}x{} grid on 2x3 tiles, {} halo-exchange bytes, max error {max_err:.2e}",
        tiny.grid.0, tiny.grid.1, report.bytes
    );
    assert!(max_err < 1e-9);

    // ---- One weak-scaling column across the four configurations ----
    let nodes = 256;
    println!("\n9e8 cells/node on {nodes} nodes, per-node throughput (Gcells/s):");
    for (label, dcr, idx) in [
        ("DCR, IDX", true, true),
        ("DCR, No IDX", true, false),
        ("No DCR, IDX", false, true),
        ("No DCR, No IDX", false, false),
    ] {
        let config = stencil::StencilConfig::weak(nodes);
        let app = stencil::build(&config);
        let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx);
        let report = execute(&app.program, &rt);
        let per_node = stencil::throughput(&config, &report) / nodes as f64;
        println!("  {label:<16} {:>8.2}", per_node / 1e9);
    }
}
