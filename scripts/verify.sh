#!/usr/bin/env bash
# Tier-1 verification: the workspace must build, test green, and stay
# hermetic (zero non-path dependencies, so it works with no network and
# no registry). Run from the repo root:
#
#   scripts/verify.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: crates/*/Cargo.toml must declare only path dependencies =="
# Any dependency line with a version requirement or registry source is a
# violation; `workspace = true` entries resolve to the path-only
# [workspace.dependencies] table in the root manifest.
bad=0
for manifest in crates/*/Cargo.toml; do
    # Strip comments, then look for dependency-table lines that name a
    # version/git/registry source.
    if sed 's/#.*//' "$manifest" | grep -nE '^[a-zA-Z0-9_-]+[[:space:]]*=[[:space:]]*("[^"]+"|\{[^}]*(version|git|registry)[[:space:]]*=)' \
        | grep -vE '^[0-9]+:(name|version|edition|license|rust-version|description|path|workspace|harness|test|bench)[[:space:]]*='; then
        echo "non-path dependency in $manifest (lines above)"
        bad=1
    fi
done
if ! grep -q 'path = "crates/' Cargo.toml; then
    echo "root Cargo.toml lost its path-only [workspace.dependencies]"
    bad=1
fi
# Within [workspace.dependencies], every entry must be a path dependency.
if awk '/^\[workspace.dependencies\]/{t=1; next} /^\[/{t=0} t' Cargo.toml \
    | sed 's/#.*//' \
    | grep -nE '=[[:space:]]*("|\{[^}]*(version|git|registry)[[:space:]]*=)' \
    | grep -v 'path[[:space:]]*='; then
    echo "root [workspace.dependencies] declares a non-path dependency (lines above)"
    bad=1
fi
[ "$bad" -eq 0 ] || { echo "hermetic-build guard FAILED"; exit 1; }
echo "hermetic-build guard OK"

echo "== cargo build --release =="
cargo build --release --offline

echo "== cargo test -q =="
cargo test -q --offline

echo "== differential fuzz smoke (release, 200 seeded programs) =="
cargo run --release --offline -q -p il-apps --bin ilaunch -- fuzz --cases 200 --seed 42

echo "== differential fuzz self-test (--inject must catch every case) =="
cargo run --release --offline -q -p il-apps --bin ilaunch -- fuzz --cases 8 --seed 42 --inject

echo "== chaos smoke (200 seeded programs, each re-run under a fault schedule) =="
# Every case re-executes under the survivable fault schedule derived
# from the --faults seed and its case seed: same task set, makespan no
# better than fault-free, byte-identical replay.
cargo run --release --offline -q -p il-apps --bin ilaunch -- fuzz --cases 200 --seed 42 --faults 0xFA17

echo "== corruption smoke (200 seeded programs, replicate-2 digest-vote defense) =="
# Every case re-executes under a seeded bit-flip schedule (task outputs
# + message payloads) with the replicate-2 defense armed: zero escapes,
# final store byte-equal to the fault-free run, byte-identical replay.
cargo run --release --offline -q -p il-apps --bin ilaunch -- fuzz --cases 200 --seed 42 --corrupt 0x5DC0

echo "== replay-equivalence tier (trace capture & replay) =="
# Trace replay is host-side memoization: these tiers assert replay-on
# vs replay-off runs are byte-identical (reports, stage attribution,
# final stores) over the oracle corpus, the golden apps, and randomized
# iterative programs with mid-run mutations, and that repeated launch
# sequences actually replay. The fuzz legs above also check on/off
# report equality per case, so the 200-case corpus carries it too.
cargo test --release --offline -q --test trace_replay
cargo test --release --offline -q -p il-runtime --test trace_props

echo "== chaos smoke (validated app run under faults) =="
# A faulted validate-mode run must still match the sequential reference
# (the binary asserts it) while the recovery protocol re-shards the
# crashed node's work.
cargo run --release --offline -q -p il-apps --bin ilaunch -- stencil --nodes 4 --validate --faults 7

echo "== figure CSV pin guard (regenerate, byte-compare against results/) =="
# The figure sweeps are deterministic DES output: regenerating them must
# reproduce the pinned CSVs byte-for-byte at any pool width. Tables 2–3
# are wall-clock and excluded. --no-bench skips the trajectory here.
csvtmp="$(mktemp -d)"
trap 'rm -rf "$csvtmp"' EXIT
cargo run --release --offline -q -p il-bench --bin figures -- \
    fig4 fig5 fig6 fig7 fig8 fig9 fig10 --out-dir "$csvtmp" --no-bench > /dev/null
for f in fig4 fig5 fig6 fig7 fig8 fig9 fig10; do
    cmp "results/$f.csv" "$csvtmp/$f.csv" \
        || { echo "pinned results/$f.csv drifted from regenerated output"; exit 1; }
done
echo "pinned figure CSVs reproduce byte-identically"

echo "== bench smoke (BENCH_PR4.json wall-clock trajectory) =="
# Re-measures the analysis kernels and the PR's before/after pairs
# (reference vs word-parallel checks at 10^6, cache off/on, repeats 5
# vs 1 on the fig4 smoke sweep) and rewrites BENCH_PR4.json.
cargo run --release --offline -q -p il-bench --bin figures -- \
    fig4 --max-nodes 4 --out-dir "$csvtmp" > /dev/null
test -s BENCH_PR4.json || { echo "BENCH_PR4.json was not written"; exit 1; }
echo "BENCH_PR4.json written"

echo "== bench smoke (BENCH_PR6.json replay trajectory) =="
# The same `figures -- bench` invocation measures per-iteration
# analysis overhead (ExpandProfile: verdicts + oracle scans + dist
# planning + recorder validation) on the iterative apps with replay on
# vs off and writes BENCH_PR6.json alongside BENCH_PR4.json.
test -s BENCH_PR6.json || { echo "BENCH_PR6.json was not written"; exit 1; }
echo "BENCH_PR6.json written"

echo "== machine-scale smoke (65k-node weak-scaling sweep, BENCH_PR7.json) =="
# The raw-DES weak-scaling sweep: calendar queue + O(1) fault tables +
# O(active) clock arena vs. the legacy heap/scan baseline, at the CI
# smoke size. Writes the BENCH_PR7.json trajectory; the full 1M-node
# sweep is `figures -- scale` with no cap.
cargo run --release --offline -q -p il-bench --bin figures -- \
    scale --scale-max-nodes 65536 --no-bench
test -s BENCH_PR7.json || { echo "BENCH_PR7.json was not written"; exit 1; }
echo "BENCH_PR7.json written"

echo "== service-mode smoke (3 policies x seeded 8-tenant mix) =="
# The multi-tenant service scheduler: the standard balanced mix and the
# skewed tail-latency mix under fifo, fair-share, and aged-priority on
# the shared simulated machine. Prints per-policy throughput and
# latency percentiles; conservation (finished + rejected == submitted)
# is asserted by the binary and the service_mode/sched_props test tiers
# in `cargo test` above.
cargo run --release --offline -q -p il-apps --bin ilaunch -- serve --policy all
cargo run --release --offline -q -p il-apps --bin ilaunch -- serve --policy all --skewed --mean-gap-us 900

echo "== service-mode bench (BENCH_PR8.json policy sweep) =="
# Per-policy throughput and p50/p95/p99 latency over the balanced and
# skewed mixes. The headline property — fair share's p99 measurably
# below FIFO's under the skewed mix — is recorded as a boolean the
# smoke greps for.
cargo run --release --offline -q -p il-bench --bin figures -- serve --no-bench
test -s BENCH_PR8.json || { echo "BENCH_PR8.json was not written"; exit 1; }
grep -q '"schema": "il-bench-trajectory-v1"' BENCH_PR8.json \
    || { echo "BENCH_PR8.json has the wrong schema"; exit 1; }
grep -q '"pr": "PR8"' BENCH_PR8.json \
    || { echo "BENCH_PR8.json is not the PR8 trajectory"; exit 1; }
grep -q '"fair_beats_fifo_p99": true' BENCH_PR8.json \
    || { echo "fair share did not beat FIFO p99 on the skewed mix"; exit 1; }
echo "BENCH_PR8.json written (fair-share p99 < FIFO p99 on the skewed mix)"

echo "== sdc bench (BENCH_PR9.json replication-overhead sweep) =="
# Golden apps under a corrupting schedule at replication factors
# k in {1,2,3}: makespan overhead vs the undefended run, verify-stage
# busy time, detection/rerun counters. The sweep re-asserts zero
# escapes and store convergence at every defended point.
cargo run --release --offline -q -p il-bench --bin figures -- sdc --no-bench
test -s BENCH_PR9.json || { echo "BENCH_PR9.json was not written"; exit 1; }
grep -q '"schema": "il-bench-trajectory-v1"' BENCH_PR9.json \
    || { echo "BENCH_PR9.json has the wrong schema"; exit 1; }
grep -q '"pr": "PR9"' BENCH_PR9.json \
    || { echo "BENCH_PR9.json is not the PR9 trajectory"; exit 1; }
echo "BENCH_PR9.json written"

echo "== AMR regrid invalidation smoke (release) =="
# The adaptive-mesh app refines/coarsens its block partition every
# epoch, forcing analysis-cache misses and trace invalidation +
# re-capture; the validated run must still match the sequential
# reference, and the faulted leg re-checks the same result under
# recovery. The run prints the trace-replay counters; regrids showing
# `invalidated >= 1` is locked by the il-bench cadence-sweep test.
cargo run --release --offline -q -p il-apps --bin ilaunch -- amr --validate
cargo run --release --offline -q -p il-apps --bin ilaunch -- amr --validate --faults 7

echo "== sparse-graph oracle leg (release) =="
# PageRank's data-dependent opaque projection (σ over ghost sets of a
# seeded power-law graph) drives the dynamic bitmask-check path; the
# validated run cross-checks final ranks against the sequential
# reference, fault-free and under the survivable fault schedule.
cargo run --release --offline -q -p il-apps --bin ilaunch -- pagerank --validate
cargo run --release --offline -q -p il-apps --bin ilaunch -- pagerank --validate --faults 7

echo "== apps bench (BENCH_PR10.json regrid-cadence + dynamic-check sweep) =="
# AMR trace/cache hit rates + invalidation counts across regrid
# cadences, and pagerank's dynamic-check throughput at 1e5+ pieces.
# The 1e5-piece floor keeps the oracle's privilege-aware registration,
# the dynamized BVH, and the BVH-pruned disjointness check honest: any
# of the three regressing to quadratic turns this leg from seconds
# into minutes.
cargo run --release --offline -q -p il-bench --bin figures -- apps --no-bench --apps-pieces 100000
test -s BENCH_PR10.json || { echo "BENCH_PR10.json was not written"; exit 1; }
grep -q '"schema": "il-bench-trajectory-v1"' BENCH_PR10.json \
    || { echo "BENCH_PR10.json has the wrong schema"; exit 1; }
grep -q '"pr": "PR10"' BENCH_PR10.json \
    || { echo "BENCH_PR10.json is not the PR10 trajectory"; exit 1; }
grep -q '"amr_cadence"' BENCH_PR10.json \
    || { echo "BENCH_PR10.json is missing the AMR cadence sweep"; exit 1; }
grep -q '"pagerank_dynamic"' BENCH_PR10.json \
    || { echo "BENCH_PR10.json is missing the pagerank dynamic-check sweep"; exit 1; }
echo "BENCH_PR10.json written"

echo "== chaos leg at 65k simulated nodes (release) =="
# The full runtime stack — expansion, distribution, recovery — on a
# 65,536-node machine, fault-free and faulted. Release-only: the test
# is #[cfg(not(debug_assertions))]-gated.
cargo test --release --offline -q --test fault_injection chaos_leg_at_65k

echo "verify.sh: all green"
