//! The launch-signature analysis cache must be pure memoization: with
//! the cache on (the default) and off, every program produces identical
//! verdicts, identical dependence structure, identical simulated time —
//! byte-identical [`RunReport::stage_json`] output. The only permitted
//! difference is the host-side [`AnalysisCacheStats`] accounting.
//!
//! Locked in over the 500-seed differential-oracle corpus and the four
//! safety-matrix applications, plus a unit test that launches colliding
//! on domain volume (the classic signature-hash trap) still get
//! distinct cache entries.

use il_oracle::generate_program;
use il_testkit::SplitMix64;
use index_launch::prelude::*;
use index_launch::runtime::{execute, expand_program, Program, RuntimeConfig};

const NODES: usize = 2;

fn on_off_configs() -> (RuntimeConfig, RuntimeConfig) {
    // Trace replay off on both sides: a replayed op skips the verdict
    // path entirely, which is its own transparency contract
    // (`tests/trace_replay.rs`); this tier isolates the per-launch
    // verdict cache, whose hit/miss counts assume every op resolves a
    // verdict.
    let on = RuntimeConfig::scale(NODES).with_trace_replay(false);
    let off = RuntimeConfig::scale(NODES).with_trace_replay(false).with_analysis_cache(false);
    (on, off)
}

/// Execute `program` with the cache on and off and assert the runs are
/// observationally identical. Returns the cache-on hit count.
fn assert_cache_transparent(name: &str, program: &Program) -> u64 {
    let (cfg_on, cfg_off) = on_off_configs();

    let exp_on = expand_program(program, &cfg_on);
    let exp_off = expand_program(program, &cfg_off);
    assert_eq!(exp_on.safety, exp_off.safety, "{name}: verdicts differ with cache on/off");
    assert_eq!(exp_on.len(), exp_off.len(), "{name}: task counts differ");

    let on = execute(program, &cfg_on);
    let off = execute(program, &cfg_off);
    assert_eq!(on.makespan, off.makespan, "{name}: makespan differs with cache on/off");
    assert_eq!(on.tasks, off.tasks, "{name}: task count differs");
    assert_eq!(
        on.stage_json().to_string(),
        off.stage_json().to_string(),
        "{name}: stage report differs with cache on/off"
    );

    // The off run must be a true control: cache disabled, never hit,
    // every launch analyzed.
    assert!(!off.analysis_cache.enabled, "{name}: off run reports cache enabled");
    assert_eq!(off.analysis_cache.hits, 0, "{name}: off run reports hits");
    assert_eq!(
        off.analysis_cache.misses,
        program.ops.len() as u64,
        "{name}: off run must analyze every launch"
    );
    assert!(on.analysis_cache.enabled, "{name}: on run reports cache disabled");
    assert_eq!(
        on.analysis_cache.hits + on.analysis_cache.misses,
        program.ops.len() as u64,
        "{name}: every launch is either a hit or a miss"
    );
    on.analysis_cache.hits
}

/// 500 seeded random launch programs (the differential-oracle corpus
/// generator): cache on and off agree everywhere. (The generator rarely
/// re-issues a byte-identical launch, so hit counts are not asserted
/// here — the iterative-apps test below pins that hits actually occur.)
#[test]
fn corpus_runs_identically_with_cache_on_and_off() {
    for case in 0..500u64 {
        let seed = SplitMix64::mix(0xCAC4E, case);
        let program = generate_program(seed);
        assert_cache_transparent(&format!("seed {seed:#x}"), &program);
    }
}

/// The four safety-matrix applications: the three paper apps plus an
/// opaque-functor program that exercises the dynamic-check path. The
/// iterative apps re-issue identical launches every timestep, so the
/// cache must hit; the equivalence assertions prove the hits change
/// nothing observable.
#[test]
fn safety_matrix_apps_run_identically_with_cache_on_and_off() {
    use index_launch::apps::{circuit, soleil, stencil};

    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 3,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 3,
        ..circuit::CircuitConfig::tiny(4)
    });
    let soleil = soleil::build(&soleil::SoleilConfig {
        iterations: 2,
        ..soleil::SoleilConfig::tiny((2, 1, 1))
    });
    let opaque = opaque_program();

    for (name, program, want_hits) in [
        ("stencil", &stencil.program, true),
        ("circuit", &circuit.program, true),
        ("soleil", &soleil.program, true),
        ("opaque", &opaque, false),
    ] {
        let hits = assert_cache_transparent(name, program);
        if want_hits {
            assert!(hits > 0, "{name}: iterative app never hit the cache");
        }
    }
}

/// A two-launch program whose launches differ only in the projection
/// functor — same task, same domain volume, same partition, same
/// privilege. A signature keyed on volume alone would collide; each
/// launch must get its own cache entry (two misses, zero hits).
#[test]
fn volume_colliding_launches_get_distinct_cache_entries() {
    use index_launch::machine::SimTime;
    use index_launch::runtime::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq};

    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let task = b.task_modeled("t");
    let identity = b.identity_functor();
    let reversed = b.functor(ProjExpr::linear(-1, 7));
    for functor in [identity, reversed] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: Domain::range(8),
            reqs: vec![RegionReq {
                partition: blocks,
                functor,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    }
    let program = b.build();

    let expanded = expand_program(&program, &RuntimeConfig::scale(NODES));
    let stats = expanded.analysis_cache;
    assert!(stats.enabled);
    assert_eq!(
        (stats.hits, stats.misses),
        (0, 2),
        "volume-colliding launches must occupy distinct cache entries"
    );

    // Control: genuinely identical launches do share an entry.
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let task = b.task_modeled("t");
    let identity = b.identity_functor();
    for _ in 0..2 {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: Domain::range(8),
            reqs: vec![RegionReq {
                partition: blocks,
                functor: identity,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    }
    let program = b.build();
    let stats = expand_program(&program, &RuntimeConfig::scale(NODES)).analysis_cache;
    assert_eq!((stats.hits, stats.misses), (1, 1), "identical launches must share one entry");
}

/// An opaque-functor program (from the safety matrix): one identity
/// launch and one opaque reversed-write launch, forcing the dynamic
/// check path through the cache machinery.
fn opaque_program() -> Program {
    use index_launch::machine::SimTime;
    use index_launch::runtime::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq};

    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let domain = Domain::range(8);
    let task = b.task_modeled("reverse_write");
    for functor in [
        b.identity_functor(),
        b.functor(ProjExpr::opaque(|p| DomainPoint::new1(7 - p.x()))),
    ] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: domain.clone(),
            reqs: vec![RegionReq {
                partition: blocks,
                functor,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    }
    b.build()
}
