//! Differential oracle: the fast path (hybrid verdicts + depgraph
//! expansion) must agree with the desugared-launch reference executor on
//! a seeded random corpus — identical verdict classes, equal dependence
//! closures, identical serial makespans — and on the real applications.
//!
//! Every case is a pure function of one seed; a failure message carries
//! the seed, and `ilaunch fuzz --repro <seed>` replays exactly that case.

use il_apps::{amr, circuit, pagerank, stencil};
use il_oracle::{check_program, run_case, run_differential, DiffConfig};

const NODES: usize = 2;

/// The CI corpus: 500 seeded random launch programs, zero divergences,
/// and every `HybridVerdict` / `UnsafeReason` class exercised at least
/// once (SafeStatic, passing dynamic check, dynamic conflict, aliased
/// write, non-injective write, conflicting images, cross-partition).
/// Every case also re-executes under a seeded survivable fault schedule
/// (`faults`): same task count, makespan ≥ fault-free, byte-identical
/// replay.
#[test]
fn corpus_has_no_divergence_and_covers_every_verdict_class() {
    let cfg = DiffConfig {
        cases: 500,
        seed: 0x5EED_CA5E,
        nodes: NODES,
        inject: false,
        threads: 0,
        faults: Some(0xFA17_5EED),
        corrupt: None,
    };
    let report = run_differential(&cfg);
    for d in &report.divergences {
        eprintln!("DIVERGENCE {d}");
        eprintln!("  reproduce: ilaunch fuzz --repro {:#x}", d.seed);
    }
    assert!(
        report.divergences.is_empty(),
        "{} of {} cases diverged (seeds above)",
        report.divergences.len(),
        report.cases
    );
    assert!(
        report.coverage.complete(),
        "corpus never exercised: {:?}\n{}",
        report.coverage.missing(),
        report.coverage
    );
    assert!(report.tasks > 1000, "corpus suspiciously small: {} tasks", report.tasks);
}

/// Injected divergences (a one-second cost perturbation in the oracle)
/// must be caught in every case, and each must reproduce byte-identically
/// from the printed seed alone — no corpus context needed. The same seed
/// without injection must be clean, proving the flag (not the seed) is
/// what diverges.
#[test]
fn injected_divergence_reproduces_from_the_printed_seed_alone() {
    let cfg = DiffConfig {
        cases: 16,
        seed: 0xBAD_CA5E,
        nodes: NODES,
        inject: true,
        threads: 0,
        faults: None,
        corrupt: None,
    };
    let report = run_differential(&cfg);
    assert_eq!(
        report.divergences.len(),
        16,
        "every injected case must diverge; only {} did",
        report.divergences.len()
    );
    for d in &report.divergences {
        let replay = run_case(d.seed, NODES, true, None, None);
        assert_eq!(
            replay.error.as_deref(),
            Some(d.detail.as_str()),
            "seed {:#x} did not reproduce the identical divergence",
            d.seed
        );
        let clean = run_case(d.seed, NODES, false, None, None);
        assert_eq!(
            clean.error, None,
            "seed {:#x} diverges even without injection",
            d.seed
        );
    }
}

/// The oracle agrees with the fast path on the paper's real applications
/// (tiny problem sizes — the reference executor materializes every
/// element access).
#[test]
fn oracle_agrees_on_real_applications() {
    let stencil_app = stencil::build(&stencil::StencilConfig::tiny((2, 2)));
    check_program(&stencil_app.program, NODES)
        .unwrap_or_else(|e| panic!("stencil diverged: {e}"));

    let circuit_app = circuit::build(&circuit::CircuitConfig::tiny(2));
    check_program(&circuit_app.program, NODES)
        .unwrap_or_else(|e| panic!("circuit diverged: {e}"));

    // The regrid cadence: partition-cycling launches must desugar to the
    // same dependence closure the fast path plans across epoch
    // boundaries (where the cross-partition copies the PR-10 staleness
    // fix governs are emitted).
    let amr_app = amr::build(&amr::AmrConfig {
        epochs: 2,
        steps_per_epoch: 2,
        ..amr::AmrConfig::tiny()
    });
    check_program(&amr_app.program, NODES).unwrap_or_else(|e| panic!("amr diverged: {e}"));

    // Every pagerank update launch takes the dynamic-check path; the
    // oracle must still see the identical verdict class and closure.
    let pagerank_app = pagerank::build(&pagerank::PagerankConfig::tiny(2));
    check_program(&pagerank_app.program, NODES)
        .unwrap_or_else(|e| panic!("pagerank diverged: {e}"));
}
