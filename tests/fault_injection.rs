//! Chaos suite: seeded fault injection and recovery.
//!
//! The fault subsystem's contract has three legs, and each gets locked
//! here:
//!
//! 1. **Determinism** — a fault schedule is a pure function of
//!    `(seed, RuntimeConfig)`, so two runs with identical inputs must
//!    produce byte-identical [`RunReport`]s, including every recovery
//!    counter and (in validation mode) the final instance data.
//! 2. **Semantics** — any *survivable* schedule (node 0 alive, at least
//!    one survivor, bounded drop rate — guaranteed by construction in
//!    `FaultPlan::generate`) may delay the run but must not change what
//!    it computes: same task count, same final data as the fault-free
//!    run, makespan no better than fault-free.
//! 3. **Inertness** — with `faults: None` (the default) every recovery
//!    code path is dormant: no recovery stats, no fault counters in the
//!    stage JSON, reports identical to a build without the subsystem.

use index_launch::apps::{amr, circuit, pagerank, soleil, stencil};
use index_launch::machine::SimTime;
use index_launch::runtime::{
    execute, FaultConfig, Program, RunReport, RuntimeConfig, ThreadPool,
};

/// Everything observable about a run, as one comparable value. String
/// rather than struct so assertion failures print the full diff.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "makespan={} tasks={} messages={} bytes={} dyn={} stages={} recovery={:?}",
        r.makespan.as_ns(),
        r.tasks,
        r.messages,
        r.bytes,
        r.dynamic_check_time.as_ns(),
        r.stage_json().to_string(),
        r.recovery,
    )
}

/// The three golden applications at validation-mode sizes.
fn golden_apps() -> Vec<(&'static str, Program)> {
    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 2,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 2,
        ..circuit::CircuitConfig::tiny(4)
    });
    let soleil = soleil::build(&soleil::SoleilConfig {
        iterations: 2,
        ..soleil::SoleilConfig::tiny((2, 1, 1))
    });
    let amr = amr::build(&amr::AmrConfig {
        epochs: 2,
        ..amr::AmrConfig::tiny()
    });
    let pagerank = pagerank::build(&pagerank::PagerankConfig::tiny(4));
    vec![
        ("stencil", stencil.program),
        ("circuit", circuit.program),
        ("soleil", soleil.program),
        ("amr", amr.program),
        ("pagerank", pagerank.program),
    ]
}

/// Leg 1: identical `(seed, config)` → byte-identical reports, including
/// the recovery counters and the final instance store.
#[test]
fn identical_seed_and_config_give_byte_identical_reports() {
    for (name, program) in golden_apps() {
        for seed in [0xC0FFEE_u64, 7, 1234] {
            let config = RuntimeConfig::validate(4).with_faults(seed);
            let a = execute(&program, &config);
            let b = execute(&program, &config);
            assert_eq!(
                fingerprint(&a),
                fingerprint(&b),
                "{name}: faulted replay diverged for seed {seed:#x}"
            );
            assert_eq!(
                a.store, b.store,
                "{name}: final data diverged between identical faulted runs (seed {seed:#x})"
            );
            let rec = a.recovery.expect("faulted run must carry recovery stats");
            assert_eq!(rec.seed, seed);
        }
    }
}

/// Leg 2: survivable schedules change timing, never semantics. Every
/// golden app, several seeds: same task count, same final data, makespan
/// at least the fault-free one.
#[test]
fn survivable_faults_preserve_semantics() {
    for (name, program) in golden_apps() {
        let clean_config = RuntimeConfig::validate(4);
        let clean = execute(&program, &clean_config);
        assert!(clean.recovery.is_none());
        for seed in [1_u64, 2, 3, 0xBAD5EED] {
            let faulted = execute(&program, &clean_config.clone().with_faults(seed));
            let rec = faulted.recovery.expect("recovery stats");
            assert_eq!(
                faulted.tasks, clean.tasks,
                "{name}/seed {seed:#x}: task count changed under faults"
            );
            assert_eq!(
                faulted.store, clean.store,
                "{name}/seed {seed:#x}: final data changed under faults \
                 (crashes={} dropped={} duplicated={})",
                rec.crashes, rec.dropped, rec.duplicated
            );
            assert!(
                faulted.makespan >= clean.makespan,
                "{name}/seed {seed:#x}: faulted makespan {} beat fault-free {}",
                faulted.makespan.as_ns(),
                clean.makespan.as_ns()
            );
        }
    }
}

/// Leg 2, sharpened: a schedule that *only* crashes one node (no drops,
/// no duplicates, no slow nodes), pinned early enough that the victim
/// still holds undone work — the run must detect the death, re-shard the
/// victim's slices onto survivors, and still converge to fault-free data.
#[test]
fn early_crash_is_detected_resharded_and_survived() {
    let (name, program) = golden_apps().remove(0);
    let clean = execute(&program, &RuntimeConfig::validate(4));
    let faults = FaultConfig {
        drop_per_mille: 0,
        dup_per_mille: 0,
        slow_nodes: 0,
        // Crash the victim almost immediately, before it can have
        // completed its share of any launch.
        crash_window: (SimTime::us(10), SimTime::us(10)),
        ..FaultConfig::from_seed(42)
    };
    let faulted = execute(&program, &RuntimeConfig::validate(4).with_fault_config(faults));
    let rec = faulted.recovery.expect("recovery stats");
    // Golden counters for this pinned (seed 42, validate(4), tiny
    // stencil) schedule. Recovery is a pure function of `(seed, config,
    // program)`, so any drift in these exact values is a behavior change
    // in the crash/re-shard protocol, not noise — update them only with
    // an explanation of what legitimately moved.
    assert_eq!(rec.crashes, 1, "{name}: schedule must crash exactly one node");
    assert_eq!(rec.dropped, 0);
    assert_eq!(rec.duplicated, 0);
    assert_eq!(
        rec.crash_dropped, 36,
        "{name}: the early crash must discard exactly the victim's in-flight events"
    );
    assert_eq!(
        rec.recovery_checks, 29,
        "{name}: the timeout/heartbeat protocol's check count drifted"
    );
    assert_eq!(
        rec.retried_tasks, 81,
        "{name}: the retry protocol's task count drifted"
    );
    assert_eq!(
        rec.resharded_groups, 5,
        "{name}: the dead node's slices must re-shard in exactly 5 groups"
    );
    assert_eq!(
        rec.reanalyses, 5,
        "{name}: every re-sharded launch must be re-analyzed exactly once"
    );
    assert_eq!(rec.duplicate_credits, 0);
    assert_eq!(rec.late_credits, 0);
    assert_eq!(faulted.tasks, clean.tasks, "{name}: every task still runs");
    assert_eq!(faulted.store, clean.store, "{name}: data survives the crash");
    assert!(faulted.makespan >= clean.makespan);
}

/// Crash + trace replay composition: a crash in the middle of an
/// iterative run whose launch sequence has already been captured and
/// replayed must invalidate the captured traces (the re-sharded
/// distribution no longer matches the recorded plans), go through the
/// re-shard protocol, and still converge to the fault-free data.
#[test]
fn mid_trace_crash_invalidates_and_converges() {
    let built = stencil::build(&stencil::StencilConfig {
        iterations: 8,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let clean = execute(&built.program, &RuntimeConfig::validate(4));
    assert!(
        clean.trace_replay.captured > 0 && clean.trace_replay.replayed > 0,
        "iterative stencil must capture and replay its launch trace: {:?}",
        clean.trace_replay
    );
    assert_eq!(clean.trace_replay.invalidated, 0, "fault-free run must not invalidate");

    // Crash one node halfway through the fault-free makespan: well after
    // the trace has begun replaying, well before the run completes.
    let mid = SimTime::us(clean.makespan.as_ns() / 1000 / 2);
    let faults = FaultConfig {
        drop_per_mille: 0,
        dup_per_mille: 0,
        slow_nodes: 0,
        crash_window: (mid, mid),
        ..FaultConfig::from_seed(42)
    };
    let faulted = execute(&built.program, &RuntimeConfig::validate(4).with_fault_config(faults));
    let rec = faulted.recovery.expect("recovery stats");
    assert_eq!(rec.crashes, 1, "schedule must crash exactly one node");
    assert!(
        rec.resharded_groups > 0,
        "the dead node's slices must be re-sharded onto survivors"
    );
    assert!(
        faulted.trace_replay.invalidated > 0,
        "re-sharding must invalidate the captured traces: {:?}",
        faulted.trace_replay
    );
    assert!(
        faulted.trace_replay.replayed > 0,
        "iterations before the crash still replay: {:?}",
        faulted.trace_replay
    );
    assert_eq!(faulted.tasks, clean.tasks, "every task still runs");
    assert_eq!(faulted.store, clean.store, "data converges to the fault-free stores");
    assert!(faulted.makespan >= clean.makespan);
}

/// Leg 3: the default configuration keeps every fault path inert.
#[test]
fn faults_off_is_inert() {
    let (_, program) = golden_apps().remove(0);
    let config = RuntimeConfig::validate(2);
    assert!(config.faults.is_none(), "faults must default to off");
    let a = execute(&program, &config);
    let b = execute(&program, &config);
    assert!(a.recovery.is_none());
    assert!(
        !a.stage_json().to_string().contains("\"faults\""),
        "fault counters must not appear in fault-free stage JSON"
    );
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

/// Seed-corpus sweep across both runtime axes and both execution modes:
/// every survivable schedule completes with the fault-free task count
/// (and, in validation mode, the fault-free data).
#[test]
fn seed_corpus_completes_under_every_axis() {
    let (name, program) = golden_apps().remove(0);
    for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
        let clean_cfg = RuntimeConfig::validate(4).with_axes(dcr, idx);
        let clean = execute(&program, &clean_cfg);
        for seed in 0..6_u64 {
            let faulted = execute(&program, &clean_cfg.clone().with_faults(seed));
            assert_eq!(
                faulted.tasks, clean.tasks,
                "{name}: dcr={dcr} idx={idx} seed={seed}"
            );
            assert_eq!(
                faulted.store, clean.store,
                "{name}: dcr={dcr} idx={idx} seed={seed}: data diverged"
            );
        }
        // Scale mode (modeled bodies, no store): still completes and is
        // internally consistent.
        let scale_cfg = RuntimeConfig::scale(4).with_axes(dcr, idx);
        let scale_clean = execute(&program, &scale_cfg);
        for seed in 0..3_u64 {
            let faulted = execute(&program, &scale_cfg.clone().with_faults(seed));
            assert_eq!(
                faulted.tasks, scale_clean.tasks,
                "{name} (scale): dcr={dcr} idx={idx} seed={seed}"
            );
            assert!(faulted.makespan >= scale_clean.makespan);
        }
    }
}

/// Machine-scale chaos leg: a faulted weak-scaling stencil at 65,536
/// simulated nodes. This exercises the whole scale stack at once — the
/// calendar event queue (auto-selected above 4096 nodes), the O(1)
/// fault-table lookups on every dispatched event, and the O(active)
/// clock arena — and must still honor the chaos contract: no lost
/// tasks, makespan no better than fault-free. Release builds only;
/// debug-mode dispatch is an order of magnitude slower.
#[cfg(not(debug_assertions))]
#[test]
fn chaos_leg_at_65k_nodes() {
    const NODES: usize = 65_536;
    let built = stencil::build(&stencil::StencilConfig {
        iterations: 1,
        ..stencil::StencilConfig::weak(NODES)
    });
    let clean_cfg = RuntimeConfig::scale(NODES);
    let clean = execute(&built.program, &clean_cfg);
    assert!(clean.tasks >= NODES as u64, "weak scaling runs at least one task per node");
    let faulted = execute(&built.program, &clean_cfg.clone().with_faults(7));
    let rec = faulted.recovery.as_ref().expect("recovery stats");
    assert!(
        rec.crashes + rec.slow_nodes > 0,
        "a 65k-node schedule must inject something: {rec:?}"
    );
    assert_eq!(faulted.tasks, clean.tasks, "chaos at 65k nodes must not lose tasks");
    assert!(faulted.makespan >= clean.makespan);
    // The per-node report is sparse: bounded by the machine, and only
    // rows that actually accrued busy time.
    assert!(faulted.node_stage_busy.len() <= NODES);
}

/// The chaos sweep is thread-count invariant: fanning faulted runs over
/// worker pools of different widths yields identical fingerprints in
/// identical order (each simulation is a pure function of its seed; the
/// pool maps results back in submission order).
#[test]
fn faulted_sweep_is_pool_width_invariant() {
    let sweep = |threads: usize| -> Vec<String> {
        let pool = ThreadPool::new(threads);
        let jobs: Vec<_> = (0..8_u64)
            .map(|seed| {
                move || {
                    let (_, program) = golden_apps().remove(0);
                    let config = RuntimeConfig::validate(3).with_faults(seed);
                    fingerprint(&execute(&program, &config))
                }
            })
            .collect();
        pool.map(jobs)
    };
    let one = sweep(1);
    let four = sweep(4);
    assert_eq!(one, four, "chaos sweep must not depend on pool width");
}

/// Multi-tenant chaos: two tenants run concurrently on a two-slot
/// service; a crash-only fault plan (no drops, no duplicates, no slow
/// nodes) kills exactly one non-coordinator node mid-run. Only the
/// session whose slot hosts the victim may observe the crash — its work
/// re-shards onto its surviving nodes — and *both* sessions must
/// converge to their fault-free instance stores. This is the blast-
/// radius contract of space-shared tenancy: a node failure is a
/// single-tenant event.
#[test]
fn node_crash_reshards_only_the_affected_tenant() {
    use index_launch::runtime::{policy_by_name, Service, ServiceConfig, SessionSpec};
    use std::rc::Rc;

    const SLOT_NODES: usize = 4;
    let apps = golden_apps();
    let programs: Vec<Rc<Program>> =
        apps.into_iter().take(2).map(|(_, p)| Rc::new(p)).collect();
    let cfg = RuntimeConfig::validate(SLOT_NODES);
    let clean: Vec<_> = programs.iter().map(|p| execute(p, &cfg)).collect();

    // Crash exactly one node, early enough that it still holds undone
    // work; everything else in the plan is quiet.
    let faults = FaultConfig {
        drop_per_mille: 0,
        dup_per_mille: 0,
        slow_nodes: 0,
        crash_window: (SimTime::us(10), SimTime::us(10)),
        ..FaultConfig::from_seed(42)
    };
    let mut svc = Service::new(
        ServiceConfig {
            slots: 2,
            slot_nodes: SLOT_NODES,
            queue_cap: 4,
            faults: Some(faults),
            replication_overrides: vec![],
        },
        policy_by_name("fifo"),
    );
    let sessions: Vec<SessionSpec> = programs
        .iter()
        .enumerate()
        .map(|(i, p)| SessionSpec {
            tenant: i as u32,
            priority: 0,
            arrival: SimTime::ZERO,
            program: p.clone(),
            config: cfg.clone().with_fault_config(FaultConfig {
                drop_per_mille: 0,
                dup_per_mille: 0,
                slow_nodes: 0,
                crash_window: (SimTime::us(10), SimTime::us(10)),
                ..FaultConfig::from_seed(42)
            }),
        })
        .collect();
    let out = svc.run(&sessions);
    assert_eq!(out.sessions.len(), 2);
    // Both admitted immediately, on distinct slots.
    for s in &out.sessions {
        assert_eq!(s.admitted, SimTime::ZERO);
    }
    assert_ne!(out.sessions[0].slot, out.sessions[1].slot);

    let recs: Vec<_> = out
        .sessions
        .iter()
        .map(|s| s.report.recovery.clone().expect("faulted service reports recovery"))
        .collect();
    let total_crashes: u64 = recs.iter().map(|r| r.crashes).sum();
    assert_eq!(total_crashes, 1, "the plan must crash exactly one slot's node: {recs:?}");
    let hit = recs.iter().position(|r| r.crashes == 1).unwrap();
    let spared = 1 - hit;

    // Blast radius: the victim's session re-shards; the other session
    // never sees a crash-related event.
    assert!(
        recs[hit].resharded_groups > 0,
        "affected session must re-shard the dead node's work: {:?}",
        recs[hit]
    );
    assert!(recs[hit].crash_dropped > 0, "the crash must discard in-flight events");
    assert_eq!(recs[spared].crash_dropped, 0, "crash leaked into the other tenant's slot");
    assert_eq!(recs[spared].resharded_groups, 0, "unaffected session re-sharded work");
    assert_eq!(recs[spared].retried_tasks, 0, "unaffected session retried tasks");

    // Convergence: both sessions end at their fault-free stores.
    for (i, s) in out.sessions.iter().enumerate() {
        assert_eq!(s.report.tasks, clean[i].tasks, "session {i}: lost tasks under the crash");
        assert_eq!(
            s.report.store, clean[i].store,
            "session {i}: data diverged from the fault-free run"
        );
    }
    assert!(out.sessions[hit].report.makespan >= clean[hit].makespan);
}
