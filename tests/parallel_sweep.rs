//! Thread-count invariance of the sweep drivers: the figure sweeps and
//! the fuzz corpus fan independent DES points across a thread pool, and
//! the emitted artifacts must be byte-identical no matter how many
//! workers the pool has — and no matter how many times each
//! deterministic point is re-executed (`--repeats`).

use il_bench::figures::{fig4, fig5, Figure, SweepOpts};
use il_bench::render::write_figure_csv;
use il_oracle::{run_differential_on, DiffConfig};
use il_runtime::ThreadPool;

/// Render a figure to its CSV bytes (via the same writer the `figures`
/// binary uses, so this pins the actual artifact).
fn csv_bytes(fig: &Figure, tag: &str) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!("il_sweep_{}_{tag}", std::process::id()));
    write_figure_csv(fig, &dir).expect("write csv");
    let bytes = std::fs::read(dir.join(format!("{}.csv", fig.id))).expect("read csv");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

fn num_cpus() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Pool sizes 1, 4, and one-per-hardware-thread produce byte-identical
/// figure CSVs.
#[test]
fn figure_csv_is_identical_at_every_pool_size() {
    let baseline = csv_bytes(&fig4(&ThreadPool::new(1), SweepOpts::new(4)), "p1");
    for threads in [4, num_cpus()] {
        let pool = ThreadPool::new(threads);
        let csv = csv_bytes(&fig4(&pool, SweepOpts::new(4)), &format!("p{threads}"));
        assert_eq!(
            csv, baseline,
            "fig4 CSV differs between pool sizes 1 and {threads}"
        );
    }
}

/// `--repeats 5` (the paper's 5-run methodology) emits the same CSV as a
/// single deterministic run.
#[test]
fn five_run_methodology_equals_single_run() {
    let pool = ThreadPool::new(2);
    let once = csv_bytes(&fig5(&pool, SweepOpts::new(2)), "r1");
    let five = csv_bytes(&fig5(&pool, SweepOpts::new(2).repeats(5)), "r5");
    assert_eq!(five, once, "repeats must not change a deterministic figure");
}

/// The fuzz corpus driver folds pool results in submission order, so the
/// whole differential report is pool-size invariant too.
#[test]
fn fuzz_corpus_report_is_identical_at_every_pool_size() {
    let cfg = DiffConfig {
        cases: 8,
        seed: 0x5EED_5EED,
        nodes: 2,
        inject: false,
        threads: 0,
        faults: Some(0xFA17),
        corrupt: Some(0x5DC0),
    };
    let render = |threads: usize| {
        let report = run_differential_on(&cfg, &ThreadPool::new(threads));
        format!(
            "cases={} tasks={} coverage={} divergences={:?}",
            report.cases,
            report.tasks,
            report.coverage,
            report
                .divergences
                .iter()
                .map(|d| (d.case, d.seed, d.detail.clone()))
                .collect::<Vec<_>>()
        )
    };
    let baseline = render(1);
    for threads in [4, num_cpus()] {
        assert_eq!(render(threads), baseline, "corpus report differs at pool size {threads}");
    }
}
