//! A systematic matrix of launch-safety scenarios, cross-validated two
//! ways: the hybrid analysis verdict (§3–4) against a brute-force
//! interference oracle that enumerates every pair of point tasks and
//! checks for overlapping accesses with conflicting privileges.
//!
//! This is the strongest soundness check in the suite: whenever the
//! hybrid analysis says "index launch" (statically or after a dynamic
//! check), the oracle must find zero interference; whenever the oracle
//! finds interference, the analysis must have rejected the launch.

use index_launch::analysis::{analyze_launch, HybridVerdict, LaunchArg, ProjExpr};
use index_launch::prelude::*;
use index_launch::region::{domains_overlap, IndexPartitionId, RegionForest, ReductionKind};

struct World {
    forest: RegionForest,
    /// 40 elements split into 8 disjoint blocks.
    disjoint: IndexPartitionId,
    /// Aliased halo-ish partition of the same region.
    aliased: IndexPartitionId,
    /// Disjoint partition of an unrelated region.
    other: IndexPartitionId,
}

fn world() -> World {
    let mut forest = RegionForest::new();
    let mut fsd = FieldSpaceDesc::new();
    fsd.add("a", FieldKind::F64);
    fsd.add("b", FieldKind::F64);
    let fs = forest.create_field_space(fsd);
    let r1 = forest.create_region(Domain::range(40), fs);
    let r2 = forest.create_region(Domain::range(40), fs);
    let disjoint = equal_partition_1d(&mut forest, r1.space, 8);
    let aliased = {
        let coloring: Vec<_> = (0..8i64)
            .map(|c| {
                let lo = (c * 5 - 1).max(0);
                let hi = ((c + 1) * 5).min(39);
                (
                    index_launch::geometry::DomainPoint::new1(c),
                    Domain::Rect1(index_launch::geometry::Rect::new1(lo, hi)),
                )
            })
            .collect();
        forest.create_partition(
            r1.space,
            Domain::range(8),
            coloring,
            index_launch::region::Disjointness::Aliased,
        )
    };
    let other = equal_partition_1d(&mut forest, r2.space, 8);
    World { forest, disjoint, aliased, other }
}

/// Brute-force interference oracle: materialize every task's accesses and
/// test all pairs.
fn interferes(w: &World, domain: &Domain, args: &[LaunchArg]) -> bool {
    let tasks: Vec<Vec<(Domain, Privilege)>> = domain
        .iter()
        .map(|point| {
            args.iter()
                .map(|arg| {
                    let color = arg.functor.eval(point);
                    let space = w
                        .forest
                        .try_subspace(arg.partition, color)
                        .expect("in-bounds color");
                    (w.forest.domain(space).clone(), arg.privilege)
                })
                .collect()
        })
        .collect();
    for i in 0..tasks.len() {
        for j in (i + 1)..tasks.len() {
            for (da, pa) in &tasks[i] {
                for (db, pb) in &tasks[j] {
                    if !pa.parallel_with(pb) && domains_overlap(da, db) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn check_agreement(w: &World, name: &str, domain: &Domain, args: Vec<LaunchArg>) {
    let verdict = analyze_launch(&w.forest, domain, &args);
    let launchable = match &verdict {
        HybridVerdict::SafeStatic => true,
        HybridVerdict::NeedsDynamic(plan) => plan.run().is_ok(),
        HybridVerdict::Unsafe(_) => false,
    };
    let oracle_interferes = interferes(w, domain, &args);
    if launchable {
        assert!(
            !oracle_interferes,
            "{name}: analysis accepted an interfering launch ({verdict:?})"
        );
    }
    // The converse (analysis rejecting a non-interfering launch) is
    // allowed — the analysis is conservative — but for the *statically
    // decidable* cases in this matrix we also assert completeness where
    // the paper's rules guarantee it.
}

fn arg(p: IndexPartitionId, f: ProjExpr, privilege: Privilege) -> LaunchArg {
    LaunchArg { partition: p, functor: f, privilege, fields: vec![] }
}

#[test]
fn safety_matrix_agrees_with_oracle() {
    let w = world();
    let d8 = Domain::range(8);
    let d5 = Domain::range(5);
    let sum = Privilege::Reduce(ReductionKind::Sum.id());
    let min = Privilege::Reduce(ReductionKind::Min.id());

    let scenarios: Vec<(&str, Domain, Vec<LaunchArg>)> = vec![
        ("identity write", d8.clone(), vec![arg(w.disjoint, ProjExpr::Identity, Privilege::Write)]),
        ("identity rw", d8.clone(), vec![arg(w.disjoint, ProjExpr::Identity, Privilege::ReadWrite)]),
        ("aliased read", d8.clone(), vec![arg(w.aliased, ProjExpr::Identity, Privilege::Read)]),
        ("aliased write", d8.clone(), vec![arg(w.aliased, ProjExpr::Identity, Privilege::Write)]),
        ("aliased reduce", d8.clone(), vec![arg(w.aliased, ProjExpr::Identity, sum)]),
        (
            "modular write safe",
            d5.clone(),
            vec![arg(w.disjoint, ProjExpr::Modular { a: 1, b: 0, m: 8 }, Privilege::Write)],
        ),
        (
            "modular write unsafe",
            d8.clone(),
            vec![arg(w.disjoint, ProjExpr::Modular { a: 1, b: 0, m: 5 }, Privilege::Write)],
        ),
        (
            "opaque reverse write",
            d8.clone(),
            vec![arg(
                w.disjoint,
                ProjExpr::opaque(|p| index_launch::geometry::DomainPoint::new1(7 - p.x())),
                Privilege::Write,
            )],
        ),
        (
            "opaque colliding write",
            d8.clone(),
            vec![arg(
                w.disjoint,
                ProjExpr::opaque(|p| index_launch::geometry::DomainPoint::new1(p.x() / 2)),
                Privilege::Write,
            )],
        ),
        (
            "read + shifted write, images disjoint",
            Domain::range(4),
            vec![
                arg(w.disjoint, ProjExpr::Identity, Privilege::Write),
                arg(w.disjoint, ProjExpr::linear(1, 4), Privilege::Read),
            ],
        ),
        (
            "read + same-functor write",
            d8.clone(),
            vec![
                arg(w.disjoint, ProjExpr::Identity, Privilege::Write),
                arg(w.disjoint, ProjExpr::Identity, Privilege::Read),
            ],
        ),
        (
            "reduce + reduce same op",
            d8.clone(),
            vec![
                arg(w.disjoint, ProjExpr::Identity, sum),
                arg(w.disjoint, ProjExpr::Modular { a: 1, b: 3, m: 8 }, sum),
            ],
        ),
        (
            "reduce + reduce different op",
            d8.clone(),
            vec![
                arg(w.disjoint, ProjExpr::Identity, sum),
                arg(w.disjoint, ProjExpr::Identity, min),
            ],
        ),
        (
            "write + read of different regions",
            d8.clone(),
            vec![
                arg(w.disjoint, ProjExpr::Identity, Privilege::Write),
                arg(w.other, ProjExpr::Identity, Privilege::Read),
            ],
        ),
        (
            "write blocks + read aliased of same region",
            d8.clone(),
            vec![
                arg(w.disjoint, ProjExpr::Identity, Privilege::Write),
                arg(w.aliased, ProjExpr::Identity, Privilege::Read),
            ],
        ),
        (
            "interleaved writer/reader (dynamic)",
            Domain::range(4),
            vec![
                arg(w.disjoint, ProjExpr::linear(2, 0), Privilege::Write),
                arg(w.disjoint, ProjExpr::linear(2, 1), Privilege::Read),
            ],
        ),
    ];

    for (name, domain, args) in scenarios {
        check_agreement(&w, name, &domain, args);
    }
}

/// Statically decidable acceptances the paper's rules guarantee.
#[test]
fn expected_static_verdicts() {
    let w = world();
    let d8 = Domain::range(8);
    let cases: Vec<(Vec<LaunchArg>, bool)> = vec![
        (vec![arg(w.disjoint, ProjExpr::Identity, Privilege::Write)], true),
        (vec![arg(w.aliased, ProjExpr::Identity, Privilege::Read)], true),
        (
            vec![arg(w.aliased, ProjExpr::Identity, Privilege::Write)],
            false,
        ),
        (
            vec![arg(w.disjoint, ProjExpr::Constant(DomainPoint::new1(3)), Privilege::Write)],
            false,
        ),
    ];
    for (args, expect_safe) in cases {
        let v = analyze_launch(&w.forest, &d8, &args);
        match (expect_safe, &v) {
            (true, HybridVerdict::SafeStatic) => {}
            (false, HybridVerdict::Unsafe(_)) => {}
            _ => panic!("unexpected verdict {v:?} for {args:?}"),
        }
    }
}

/// End-to-end golden safety matrix over the three applications: every
/// launch the apps issue must clear the hybrid analysis — statically or
/// via the Listing-3 dynamic self-/cross-checks reporting
/// non-interference — and the per-app static/dynamic split is pinned so
/// an analysis regression (e.g. the static rules silently weakening and
/// dumping everything onto the dynamic path) shows up as a diff here.
#[test]
fn apps_clear_safety_matrix_end_to_end() {
    use index_launch::runtime::{execute, Program, RuntimeConfig};

    /// Classify every launch in `program`; returns (static, dynamic)
    /// acceptance counts. Panics on any Unsafe verdict or failed check.
    fn classify(name: &str, program: &Program) -> (usize, usize) {
        let (mut safe_static, mut needs_dynamic) = (0, 0);
        for (i, op) in program.ops.iter().enumerate() {
            let launch = op.launch();
            let args: Vec<LaunchArg> = launch
                .reqs
                .iter()
                .map(|req| LaunchArg {
                    partition: req.partition,
                    functor: program.functor(req.functor).clone(),
                    privilege: req.privilege,
                    fields: req.fields.clone(),
                })
                .collect();
            match analyze_launch(&program.forest, &launch.domain, &args) {
                HybridVerdict::SafeStatic => safe_static += 1,
                HybridVerdict::NeedsDynamic(plan) => {
                    needs_dynamic += 1;
                    plan.run().unwrap_or_else(|c| {
                        panic!("{name}: op {i} failed its dynamic check: {c:?}")
                    });
                }
                HybridVerdict::Unsafe(reason) => {
                    panic!("{name}: op {i} rejected as unsafe: {reason:?}")
                }
            }
        }
        (safe_static, needs_dynamic)
    }

    let stencil = index_launch::apps::stencil::build(&index_launch::apps::stencil::StencilConfig {
        iterations: 2,
        ..index_launch::apps::stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = index_launch::apps::circuit::build(&index_launch::apps::circuit::CircuitConfig {
        iterations: 2,
        ..index_launch::apps::circuit::CircuitConfig::tiny(4)
    });
    let soleil = index_launch::apps::soleil::build(&index_launch::apps::soleil::SoleilConfig {
        iterations: 2,
        ..index_launch::apps::soleil::SoleilConfig::tiny((2, 1, 1))
    });
    // AMR cycles its launches through per-level block/halo partitions:
    // every epoch's launches are affine over a disjoint partition, so
    // the whole refinement cadence stays in the static column.
    let amr = index_launch::apps::amr::build(&index_launch::apps::amr::AmrConfig::tiny());
    // PageRank's update launches project through a data-dependent
    // (opaque) piece permutation: statically undecidable, so every one
    // of them lands in the dynamic column and must pass the Listing-3
    // bitmask check.
    let pagerank =
        index_launch::apps::pagerank::build(&index_launch::apps::pagerank::PagerankConfig::tiny(4));

    // A fourth program whose second launch uses an opaque functor, so the
    // hybrid analysis must fall back to the Listing-3 dynamic self-check
    // and this test exercises the dynamic column end-to-end.
    let opaque = {
        use index_launch::machine::SimTime;
        use index_launch::runtime::{CostSpec, IndexLaunchDesc, ProgramBuilder, RegionReq};
        let mut b = ProgramBuilder::new();
        let mut fsd = FieldSpaceDesc::new();
        let f = fsd.add("x", FieldKind::F64);
        let fs = b.forest.create_field_space(fsd);
        let region = b.forest.create_region(Domain::range(32), fs);
        let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
        let domain = Domain::range(8);
        let task = b.task("reverse_write", move |ctx| {
            let pts: Vec<_> = ctx.domain(0).iter().collect();
            for p in pts {
                ctx.write(0, f, p, p.x() as f64);
            }
        });
        for functor in [
            b.identity_functor(),
            b.functor(ProjExpr::opaque(|p| DomainPoint::new1(7 - p.x()))),
        ] {
            b.index_launch(IndexLaunchDesc {
                task,
                domain: domain.clone(),
                reqs: vec![RegionReq {
                    partition: blocks,
                    functor,
                    privilege: Privilege::Write,
                    fields: vec![f],
                    tree: region.tree,
                    field_space: fs,
                }],
                scalars: vec![],
                cost: CostSpec::Uniform(SimTime::us(10)),
                shard: None,
            });
        }
        b.build()
    };

    // Golden matrix: (app, statically safe, dynamically checked).
    // Every op must land in one of the two accepting columns.
    let golden: Vec<(&str, &Program, usize, usize)> = vec![
        ("stencil", &stencil.program, 5, 0),
        ("circuit", &circuit.program, 8, 0),
        ("soleil", &soleil.program, 94, 0),
        ("opaque", &opaque, 1, 1),
        ("amr", &amr.program, 37, 0),
        ("pagerank", &pagerank.program, 4, 3),
    ];
    for (name, program, want_static, want_dynamic) in golden {
        let (got_static, got_dynamic) = classify(name, program);
        assert_eq!(
            (got_static, got_dynamic),
            (want_static, want_dynamic),
            "{name}: safety-matrix drift (static, dynamic)"
        );
        assert_eq!(got_static + got_dynamic, program.ops.len(), "{name}: every op classified");
        // And the programs actually run end-to-end under a validating
        // runtime (which re-executes the same checks internally).
        let report = execute(program, &RuntimeConfig::validate(2));
        assert!(report.makespan.as_ns() > 0, "{name}: empty execution");

        // The same program under a survivable crash schedule: the
        // safety verdicts are a property of the launches, not the
        // machine, so the classification above must keep holding while
        // the runtime re-shards the dead node's work — same tasks, same
        // final data, and a makespan no better than fault-free.
        let faulted = execute(program, &RuntimeConfig::validate(4).with_faults(0x5AFE));
        let baseline = execute(program, &RuntimeConfig::validate(4));
        let rec = faulted.recovery.expect("faulted run reports recovery stats");
        assert_eq!(faulted.tasks, baseline.tasks, "{name}: task count drifted under faults");
        assert_eq!(faulted.store, baseline.store, "{name}: data drifted under faults");
        assert!(
            faulted.makespan >= baseline.makespan,
            "{name}: faulted makespan {} beat fault-free {}",
            faulted.makespan.as_ns(),
            baseline.makespan.as_ns()
        );
        let (again_static, again_dynamic) = classify(name, program);
        assert_eq!(
            (again_static, again_dynamic),
            (want_static, want_dynamic),
            "{name}: verdicts changed after a faulted execution (rec: {rec:?})"
        );
    }
}

/// Field-disjoint arguments never interfere — the stencil pattern.
#[test]
fn field_disjointness_passes_cross_check() {
    let w = world();
    let fa = index_launch::region::FieldId(0);
    let fb = index_launch::region::FieldId(1);
    let v = analyze_launch(
        &w.forest,
        &Domain::range(8),
        &[
            LaunchArg {
                partition: w.aliased,
                functor: ProjExpr::Identity,
                privilege: Privilege::Read,
                fields: vec![fa],
            },
            LaunchArg {
                partition: w.disjoint,
                functor: ProjExpr::Identity,
                privilege: Privilege::ReadWrite,
                fields: vec![fb],
            },
        ],
    );
    assert!(matches!(v, HybridVerdict::SafeStatic), "{v:?}");
}

/// Negative golden cases: genuinely interfering launches (the brute-force
/// oracle confirms interference) must be rejected with the *specific*
/// `UnsafeReason` the paper's rules prescribe — not merely "unsafe".
#[test]
fn interfering_launches_carry_the_expected_unsafe_reason() {
    use index_launch::analysis::UnsafeReason;
    let w = world();
    let d8 = Domain::range(8);
    let sum = Privilege::Reduce(ReductionKind::Sum.id());
    let min = Privilege::Reduce(ReductionKind::Min.id());

    // Aliased projection written in place: neighbouring halo blocks
    // overlap, so concurrent read-writes collide.
    let args = vec![arg(w.aliased, ProjExpr::Identity, Privilege::ReadWrite)];
    assert!(interferes(&w, &d8, &args), "golden case must actually interfere");
    match analyze_launch(&w.forest, &d8, &args) {
        HybridVerdict::Unsafe(UnsafeReason::AliasedWritePartition { arg: 0 }) => {}
        v => panic!("aliased RW: expected AliasedWritePartition, got {v:?}"),
    }

    // Listing 2: `q[i % 4]` written over 8 points — two points per block.
    let args = vec![arg(
        w.disjoint,
        ProjExpr::Modular { a: 1, b: 0, m: 4 },
        Privilege::Write,
    )];
    assert!(interferes(&w, &d8, &args));
    match analyze_launch(&w.forest, &d8, &args) {
        HybridVerdict::Unsafe(UnsafeReason::NonInjectiveWrite { arg: 0 }) => {}
        v => panic!("modular write: expected NonInjectiveWrite, got {v:?}"),
    }

    // RW/RW through the same functor on one disjoint partition: the
    // images are provably identical, so the rejection is static. (The
    // overlap here is intra-task — both arguments of point `i` alias
    // block `i` with write privileges — which the cross-task oracle
    // cannot see; the set-level image rule rejects it statically.)
    let args = vec![
        arg(w.disjoint, ProjExpr::Identity, Privilege::ReadWrite),
        arg(w.disjoint, ProjExpr::Identity, Privilege::ReadWrite),
    ];
    match analyze_launch(&w.forest, &d8, &args) {
        HybridVerdict::Unsafe(UnsafeReason::ConflictingImages { a: 0, b: 1 }) => {}
        v => panic!("RW/RW same image: expected ConflictingImages, got {v:?}"),
    }

    // RW/RW overlap with shifted affine images: point `i` read-writes
    // blocks `i` and `i+1`, racing with its neighbours. The image
    // intervals overlap but are not provably equal, so the dynamic
    // bitmask check runs — and reports the collision.
    let d7 = Domain::range(7);
    let args = vec![
        arg(w.disjoint, ProjExpr::linear(1, 0), Privilege::ReadWrite),
        arg(w.disjoint, ProjExpr::linear(1, 1), Privilege::ReadWrite),
    ];
    assert!(interferes(&w, &d7, &args));
    match analyze_launch(&w.forest, &d7, &args) {
        HybridVerdict::NeedsDynamic(plan) => match plan.run() {
            Err(UnsafeReason::DynamicConflict { .. }) => {}
            r => panic!("shifted RW/RW: expected DynamicConflict, got {r:?}"),
        },
        v => panic!("shifted RW/RW: expected NeedsDynamic, got {v:?}"),
    }

    // Mismatched reduction operators through the aliased partition:
    // reductions only commute with themselves, and halo blocks overlap.
    let args = vec![
        arg(w.aliased, ProjExpr::Identity, sum),
        arg(w.aliased, ProjExpr::Identity, min),
    ];
    assert!(interferes(&w, &d8, &args));
    match analyze_launch(&w.forest, &d8, &args) {
        HybridVerdict::Unsafe(UnsafeReason::ConflictingImages { a: 0, b: 1 }) => {}
        v => panic!("sum vs min: expected ConflictingImages, got {v:?}"),
    }

    // Write through the disjoint blocks while reading the aliased halos
    // of the same region: colors cannot be related across partitions.
    let args = vec![
        arg(w.disjoint, ProjExpr::Identity, Privilege::Write),
        arg(w.aliased, ProjExpr::Identity, Privilege::Read),
    ];
    assert!(interferes(&w, &d8, &args));
    match analyze_launch(&w.forest, &d8, &args) {
        HybridVerdict::Unsafe(UnsafeReason::CrossPartitionConflict { a: 0, b: 1 }) => {}
        v => panic!("disjoint write vs aliased read: expected CrossPartitionConflict, got {v:?}"),
    }

    // Opaque `i -> i/2` writer: invisible to the static analysis, so the
    // dynamic bitmask check runs — and reports the collision.
    let args = vec![arg(
        w.disjoint,
        ProjExpr::opaque(|p| DomainPoint::new1(p.x() / 2)),
        Privilege::Write,
    )];
    let d4 = Domain::range(4);
    assert!(interferes(&w, &d4, &args));
    match analyze_launch(&w.forest, &d4, &args) {
        HybridVerdict::NeedsDynamic(plan) => match plan.run() {
            Err(UnsafeReason::DynamicConflict { arg: 0, .. }) => {}
            r => panic!("opaque collision: expected DynamicConflict, got {r:?}"),
        },
        v => panic!("opaque writer: expected NeedsDynamic, got {v:?}"),
    }
}
