//! The paper's headline performance claims, asserted as properties of the
//! simulation at test-friendly node counts:
//!
//! * index launches beat task-by-task issuance, with and without DCR,
//!   when tracing isn't forcing early expansion (§6.2.1, Figure 6);
//! * DCR + IDX is the best configuration everywhere (Figures 4–8);
//! * DOM sweeps scale worse than forall-style fluid (Figures 9–10);
//! * the dynamic safety checks cost a negligible fraction of a run
//!   (§6.3, Figure 10).

use index_launch::apps::{circuit, soleil, stencil};
use index_launch::prelude::*;

fn circuit_tput(nodes: usize, over: usize, dcr: bool, idx: bool, tracing: bool) -> f64 {
    let config = circuit::CircuitConfig {
        iterations: 5,
        ..circuit::CircuitConfig::weak(nodes, over)
    };
    let app = circuit::build(&config);
    let rt = RuntimeConfig::scale(nodes).with_axes(dcr, idx).with_tracing(tracing);
    let report = execute(&app.program, &rt);
    circuit::throughput(&config, &report)
}

#[test]
fn index_launches_win_overdecomposed_without_tracing() {
    // Figure 6's claim at 64 nodes: IDX provides a benefit whether or not
    // DCR is used.
    let dcr_idx = circuit_tput(64, 10, true, true, false);
    let dcr_no = circuit_tput(64, 10, true, false, false);
    let cen_idx = circuit_tput(64, 10, false, true, false);
    let cen_no = circuit_tput(64, 10, false, false, false);
    assert!(dcr_idx > 2.0 * dcr_no, "DCR: {dcr_idx:.3e} !> 2x {dcr_no:.3e}");
    assert!(cen_idx > 2.0 * cen_no, "No DCR: {cen_idx:.3e} !> 2x {cen_no:.3e}");
    assert!(dcr_idx >= cen_idx, "DCR+IDX must be the best configuration");
}

#[test]
fn tracing_undoes_idx_benefit_without_dcr() {
    // §6.2.1: with tracing, the non-DCR IDX configuration degenerates to
    // (slightly below) the non-DCR No-IDX one.
    let with_idx = circuit_tput(64, 1, false, true, true);
    let without = circuit_tput(64, 1, false, false, true);
    let ratio = with_idx / without;
    assert!(
        (0.85..=1.05).contains(&ratio),
        "expected IDX ≈ (slightly below) No IDX under tracing, got ratio {ratio:.3}"
    );
    // ... but with tracing disabled and tasks overdecomposed (Figure 6's
    // condition: slices carry many tasks each) IDX clearly wins again.
    // Without overdecomposition |D| = nodes means one task per slice, so
    // IDX ≈ No IDX even without tracing — visible in Figure 5's two
    // overlapping No-DCR lines.
    let no_trace_idx = circuit_tput(64, 10, false, true, false);
    let no_trace_no = circuit_tput(64, 10, false, false, false);
    assert!(no_trace_idx > 1.2 * no_trace_no);
}

#[test]
fn dcr_idx_is_best_for_stencil_strong_scaling() {
    let nodes = 64;
    let mut results = Vec::new();
    for (dcr, idx) in [(true, true), (true, false), (false, true), (false, false)] {
        let config = stencil::StencilConfig {
            iterations: 5,
            ..stencil::StencilConfig::strong(nodes)
        };
        let app = stencil::build(&config);
        let report = execute(&app.program, &RuntimeConfig::scale(nodes).with_axes(dcr, idx));
        results.push(stencil::throughput(&config, &report));
    }
    let best = results[0];
    for (i, r) in results.iter().enumerate().skip(1) {
        assert!(best >= *r, "DCR+IDX ({best:.3e}) must beat config {i} ({r:.3e})");
    }
}

#[test]
fn dom_sweeps_scale_worse_than_fluid() {
    // Figure 9 vs Figure 10: forall-parallel fluid weak-scales ~flat;
    // the full simulation with wavefront sweeps loses efficiency.
    let nodes = 16;
    let fluid_eff = {
        let mk = |n: usize| {
            let config = soleil::SoleilConfig {
                iterations: 3,
                ..soleil::SoleilConfig::fluid_weak(n)
            };
            let app = soleil::build(&config);
            let rep = execute(&app.program, &RuntimeConfig::scale(n));
            soleil::throughput(&config, &rep)
        };
        mk(nodes) / mk(1)
    };
    let full_eff = {
        let mk = |n: usize| {
            let config = soleil::SoleilConfig {
                iterations: 3,
                ..soleil::SoleilConfig::full_weak(n)
            };
            let app = soleil::build(&config);
            let rep = execute(&app.program, &RuntimeConfig::scale(n));
            soleil::throughput(&config, &rep)
        };
        mk(nodes) / mk(1)
    };
    assert!(fluid_eff > 0.97, "fluid-only should weak-scale ~flat: {fluid_eff:.3}");
    assert!(full_eff < fluid_eff, "DOM must cost efficiency: {full_eff:.3} vs {fluid_eff:.3}");
    assert!(full_eff > 0.4, "but the sweeps still pipeline: {full_eff:.3}");
}

#[test]
fn dynamic_checks_are_negligible() {
    // §6.3: check cost is less than the application's task granularity,
    // so enabling them changes the makespan by well under 1%.
    let nodes = 8;
    let config = soleil::SoleilConfig {
        iterations: 3,
        ..soleil::SoleilConfig::full_weak(nodes)
    };
    let on = {
        let app = soleil::build(&config);
        execute(&app.program, &RuntimeConfig::scale(nodes))
    };
    let off = {
        let app = soleil::build(&config);
        execute(&app.program, &RuntimeConfig::scale(nodes).with_dynamic_checks(false))
    };
    assert!(on.dynamic_check_time > SimTime::ZERO);
    let slowdown = on.makespan.as_secs_f64() / off.makespan.as_secs_f64();
    assert!(slowdown < 1.01, "checks must be negligible, got {slowdown:.4}");
}

#[test]
fn strong_scaling_crossover_is_where_overheads_meet_granularity() {
    // Circuit strong scaling: DCR+NoIDX tracks DCR+IDX at small node
    // counts and falls behind once per-task issuance outweighs the
    // shrinking per-node work (Figure 4's divergence).
    let tput = |nodes: usize, idx: bool| {
        let config = circuit::CircuitConfig {
            iterations: 5,
            ..circuit::CircuitConfig::strong(nodes)
        };
        let app = circuit::build(&config);
        let rep = execute(&app.program, &RuntimeConfig::scale(nodes).with_axes(true, idx));
        circuit::throughput(&config, &rep)
    };
    let small_ratio = tput(8, true) / tput(8, false);
    let large_ratio = tput(256, true) / tput(256, false);
    assert!(small_ratio < 1.05, "no divergence at 8 nodes: {small_ratio:.3}");
    assert!(large_ratio > 1.5, "clear divergence at 256 nodes: {large_ratio:.3}");
}
