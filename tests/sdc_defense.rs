//! Silent-data-corruption suite: seeded bit-flip injection and the
//! replication defense.
//!
//! The SDC subsystem's contract has four legs, each locked here:
//!
//! 1. **Detection** — under any survivable corruption schedule with
//!    replicate-2 defense on, every flipped task output is caught by the
//!    digest vote (zero escapes) and the run converges byte-for-byte to
//!    the fault-free instance stores.
//! 2. **Negative control** — the same schedules with the defense *off*
//!    provably corrupt: escapes are counted and (on pinned seeds) the
//!    final store diverges from the fault-free run. The injector is not
//!    a no-op.
//! 3. **Lifecycle** — a corrupting defended run exercises the whole
//!    inject → detect → quarantine → re-run → converge pipeline, with
//!    deterministic counters (byte-identical replay).
//! 4. **Transparency** — with no corruption scheduled and no replication
//!    policy, every SDC code path is dormant: no stats, reports
//!    byte-identical to a build without the subsystem.

use index_launch::apps::{amr, circuit, pagerank, soleil, stencil};
use index_launch::runtime::{
    execute, Program, ReplicationConfig, RunReport, RuntimeConfig,
};

/// Everything observable about a run, as one comparable value. String
/// rather than struct so assertion failures print the full diff.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "makespan={} tasks={} messages={} bytes={} stages={} sdc={:?}",
        r.makespan.as_ns(),
        r.tasks,
        r.messages,
        r.bytes,
        r.stage_json().to_string(),
        r.sdc,
    )
}

/// The three golden applications at validation-mode sizes.
fn golden_apps() -> Vec<(&'static str, Program)> {
    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 2,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 2,
        ..circuit::CircuitConfig::tiny(4)
    });
    let soleil = soleil::build(&soleil::SoleilConfig {
        iterations: 2,
        ..soleil::SoleilConfig::tiny((2, 1, 1))
    });
    let amr = amr::build(&amr::AmrConfig {
        epochs: 2,
        ..amr::AmrConfig::tiny()
    });
    let pagerank = pagerank::build(&pagerank::PagerankConfig::tiny(4));
    vec![
        ("stencil", stencil.program),
        ("circuit", circuit.program),
        ("soleil", soleil.program),
        ("amr", amr.program),
        ("pagerank", pagerank.program),
    ]
}

/// Leg 1: replicate-2 defense catches every seeded flip on every golden
/// app — zero escapes, final data byte-equal to the fault-free store,
/// and the verification overhead never makes the run faster.
#[test]
fn defended_runs_converge_to_fault_free_stores() {
    for (name, program) in golden_apps() {
        let clean_cfg = RuntimeConfig::validate(4);
        let clean = execute(&program, &clean_cfg);
        assert!(clean.sdc.is_none(), "{name}: clean run must not carry SDC stats");
        for seed in [1_u64, 2, 3, 42, 0x5DC0, 0xBADBEEF] {
            let cfg = clean_cfg
                .clone()
                .with_corruption(seed)
                .with_replication(ReplicationConfig::all(2));
            let defended = execute(&program, &cfg);
            let sdc = defended.sdc.clone().expect("corrupting run must carry SDC stats");
            assert_eq!(
                sdc.escaped, 0,
                "{name}/seed {seed:#x}: corrupted outputs escaped the vote: {sdc:?}"
            );
            assert!(
                sdc.replicated_tasks > 0 && sdc.replicas > 0,
                "{name}/seed {seed:#x}: replicate-all must replicate: {sdc:?}"
            );
            assert_eq!(
                defended.tasks, clean.tasks,
                "{name}/seed {seed:#x}: task count changed under corruption"
            );
            assert_eq!(
                defended.store, clean.store,
                "{name}/seed {seed:#x}: defended store diverged from fault-free \
                 ({} detected, {} reruns)",
                sdc.detected, sdc.reruns
            );
            assert!(
                defended.makespan >= clean.makespan,
                "{name}/seed {seed:#x}: verification made the run faster"
            );
        }
    }
}

/// Leg 2, counting half: with the defense off, unreplicated commits on
/// the corrupt node are tallied as escapes on every seed that fires.
#[test]
fn undefended_corruption_counts_escapes() {
    let (name, program) = golden_apps().remove(0);
    let mut fired = 0;
    for seed in [1_u64, 2, 3, 42, 0x5DC0] {
        let cfg = RuntimeConfig::validate(4).with_corruption(seed);
        let report = execute(&program, &cfg);
        let sdc = report.sdc.clone().expect("corrupting run must carry SDC stats");
        assert_eq!(
            sdc.detected + sdc.reruns + sdc.replicated_tasks,
            0,
            "{name}/seed {seed:#x}: no defense may run when replication is off: {sdc:?}"
        );
        fired += u64::from(sdc.escaped > 0 || sdc.payload_escaped > 0);
    }
    assert!(fired > 0, "{name}: no pinned seed produced a single escape — injector inert?");
}

/// Leg 2, data half: on pinned seeds the escaped flips land in the real
/// store, so the undefended final data provably diverges from the
/// fault-free run. (Not every escape survives to the end of the run — a
/// later task may overwrite the flipped element — hence *pinned* seeds.)
#[test]
fn undefended_corruption_diverges_on_pinned_seeds() {
    let (name, program) = golden_apps().remove(0);
    let clean_cfg = RuntimeConfig::validate(4);
    let clean = execute(&program, &clean_cfg);
    for seed in PINNED_DIVERGING_SEEDS {
        let report = execute(&program, &clean_cfg.clone().with_corruption(*seed));
        let sdc = report.sdc.clone().expect("SDC stats");
        assert!(
            sdc.escaped + sdc.payload_escaped > 0,
            "{name}/seed {seed:#x}: pinned seed stopped firing: {sdc:?}"
        );
        assert_eq!(report.tasks, clean.tasks, "{name}/seed {seed:#x}: corruption is silent");
        assert_ne!(
            report.store, clean.store,
            "{name}/seed {seed:#x}: escaped corruption left no trace in the store"
        );
    }
}

/// Seeds (stencil tiny, 4 nodes) whose undefended escapes survive to the
/// final store. Pinned so the negative control cannot silently rot.
const PINNED_DIVERGING_SEEDS: &[u64] = &[2, 3, 6];

/// Leg 3: a corrupting defended run walks the full lifecycle — flips
/// detected, quarantined, re-run — and is a pure function of
/// `(seed, config)`: two runs give byte-identical reports and stores.
#[test]
fn corruption_lifecycle_is_deterministic() {
    let (name, program) = golden_apps().remove(0);
    let mut detected_somewhere = false;
    for seed in [1_u64, 2, 3, 42] {
        let cfg = RuntimeConfig::validate(4)
            .with_corruption(seed)
            .with_replication(ReplicationConfig::all(2));
        let a = execute(&program, &cfg);
        let b = execute(&program, &cfg);
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "{name}/seed {seed:#x}: defended replay diverged"
        );
        assert_eq!(a.store, b.store, "{name}/seed {seed:#x}: defended stores diverged");
        let sdc = a.sdc.clone().expect("SDC stats");
        assert_eq!(sdc.escaped, 0);
        assert_eq!(
            sdc.detected, sdc.quarantined,
            "{name}/seed {seed:#x}: every detection quarantines exactly once"
        );
        if sdc.detected > 0 {
            detected_somewhere = true;
            assert!(
                sdc.reruns > 0,
                "{name}/seed {seed:#x}: a quarantined task must re-run: {sdc:?}"
            );
        }
    }
    assert!(
        detected_somewhere,
        "{name}: no seed exercised the detect/quarantine/re-run pipeline"
    );
}

/// Criticality-threshold and flagged-ops policies replicate a strict
/// subset of the work; whatever they do replicate is still escape-free.
#[test]
fn selective_policies_replicate_a_subset() {
    let (name, program) = golden_apps().remove(0);
    let base = RuntimeConfig::validate(4).with_corruption(3);
    let all = execute(&program, &base.clone().with_replication(ReplicationConfig::all(2)));
    let all_sdc = all.sdc.clone().expect("SDC stats");
    let critical = execute(
        &program,
        &base
            .clone()
            .with_replication(ReplicationConfig::critical(index_launch::machine::SimTime::us(40), 2)),
    );
    let crit_sdc = critical.sdc.clone().expect("SDC stats");
    assert!(
        crit_sdc.replicated_tasks <= all_sdc.replicated_tasks,
        "{name}: threshold policy replicated more than replicate-all \
         ({crit_sdc:?} vs {all_sdc:?})"
    );
    // Tasks the policy skipped commit unverified — those escapes are the
    // cost model's explicit trade, and they are counted, not hidden.
    assert!(
        crit_sdc.detected + crit_sdc.escaped > 0,
        "{name}: corruption must surface either as detections or counted escapes: {crit_sdc:?}"
    );
}

/// Leg 4: no corruption scheduled, no replication policy → the SDC
/// subsystem is invisible. An explicit `ReplicationConfig::None` is
/// equally inert, and neither perturbs a clean run's bytes.
#[test]
fn defense_off_is_inert() {
    let (name, program) = golden_apps().remove(0);
    let plain_cfg = RuntimeConfig::validate(4);
    let plain = execute(&program, &plain_cfg);
    assert!(plain.sdc.is_none(), "{name}: clean run must not carry SDC stats");
    let verify = index_launch::machine::Stage::Verify.index();
    assert_eq!(
        (plain.stage_busy.get(index_launch::machine::Stage::Verify).as_ns(),
         plain.stage_messages[verify],
         plain.stage_bytes[verify]),
        (0, 0, 0),
        "{name}: the verify stage must stay idle in a clean run"
    );
    let explicit_none =
        execute(&program, &plain_cfg.clone().with_replication(ReplicationConfig::None));
    assert!(explicit_none.sdc.is_none(), "{name}: ReplicationConfig::None must be inert");
    assert_eq!(
        fingerprint(&plain),
        fingerprint(&explicit_none),
        "{name}: an inert replication config changed the run's bytes"
    );
    assert_eq!(plain.store, explicit_none.store);
}

/// Acceptance corpus (release builds only — three validation-mode
/// executions per case): 500 seeded random programs through the
/// differential oracle's SDC leg. Every corrupted schedule with
/// replicate-2 defense must detect all flips and converge to the
/// fault-free store; any escape or divergence fails with the single
/// seed that reproduces it.
#[cfg(not(debug_assertions))]
#[test]
fn corpus_500_seeds_zero_escapes() {
    use il_oracle::{run_differential, DiffConfig};
    let report = run_differential(&DiffConfig {
        cases: 500,
        corrupt: Some(0x5DC0),
        ..DiffConfig::default()
    });
    assert!(
        report.divergences.is_empty(),
        "SDC corpus divergences: {:#?}",
        report.divergences
    );
    assert!(report.tasks > 0);
}
