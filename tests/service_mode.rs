//! Service-mode equivalence tier: the multi-tenant scheduler must be a
//! pure *placement* layer over the per-program executor.
//!
//! Three properties are locked here:
//!
//! 1. **Transparency at n=1.** A service with one slot running one
//!    session produces a [`RunReport`] byte-identical to a direct
//!    [`execute`] of the same program — same stage JSON, same final
//!    data, same host-side cache/replay/recovery accounting. Checked
//!    across the safety-matrix golden applications (validation mode,
//!    with and without fault injection) and a 100-seed slice of the
//!    differential-oracle corpus.
//! 2. **Pool-width invariance.** The per-session reports of a
//!    multi-tenant workload are identical whether the service runs the
//!    sessions on 1, 2, or 4 slots (fault-free): sessions are
//!    node-disjoint and their reports `t0`-relative, so concurrency
//!    changes *when* a session runs, never *what* it computes.
//! 3. **Deterministic replay.** The same seed and arrival schedule
//!    produce bit-identical service outcomes — including admission
//!    times, slot assignments, and wait rounds — run after run.

use std::rc::Rc;

use il_oracle::generate_program;
use il_testkit::SplitMix64;
use index_launch::machine::SimTime;
use index_launch::prelude::*;
use index_launch::runtime::{
    execute, policy_by_name, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
    RunReport, RuntimeConfig, Service, ServiceConfig, ServiceReport, SessionSpec,
};

/// Everything observable about a run — simulated results *and*
/// host-side accounting — as one comparable value. String rather than
/// struct so assertion failures print the full diff.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "makespan={} setup={} elapsed={} tasks={} messages={} bytes={} dyn={} span={} \
         stages={} nodes={:?} cache=({},{},{},{},{}) replay={:?} recovery={:?}",
        r.makespan.as_ns(),
        r.setup_done.as_ns(),
        r.elapsed.as_ns(),
        r.tasks,
        r.messages,
        r.bytes,
        r.dynamic_check_time.as_ns(),
        r.issuance_span.as_ns(),
        r.stage_json().to_string(),
        r.node_stage_busy,
        r.analysis_cache.enabled,
        r.analysis_cache.hits,
        r.analysis_cache.misses,
        r.analysis_cache.evals_saved,
        r.analysis_cache.warm_hits,
        r.trace_replay,
        r.recovery,
    )
}

/// Run `program` as the sole session of a one-slot service (fresh
/// tenant, so no warm state) and return its report.
fn service_solo(program: &Rc<Program>, cfg: &RuntimeConfig) -> RunReport {
    let mut svc = Service::new(
        ServiceConfig {
            slots: 1,
            slot_nodes: cfg.nodes,
            queue_cap: 2,
            faults: cfg.faults.clone(),
            replication_overrides: vec![],
        },
        policy_by_name("fifo"),
    );
    let sessions = vec![SessionSpec {
        tenant: 0,
        priority: 0,
        arrival: SimTime::ZERO,
        program: program.clone(),
        config: cfg.clone(),
    }];
    let mut out = svc.run(&sessions);
    assert!(out.rejected.is_empty(), "n=1 session rejected");
    assert_eq!(out.sessions.len(), 1);
    let s = out.sessions.pop().unwrap();
    assert_eq!(s.admitted, SimTime::ZERO, "sole session must admit at time zero");
    assert_eq!(s.slot, 0);
    s.report
}

fn assert_transparent(name: &str, program: &Rc<Program>, cfg: &RuntimeConfig) {
    let solo = execute(program, cfg);
    let svc = service_solo(program, cfg);
    assert_eq!(
        fingerprint(&solo),
        fingerprint(&svc),
        "{name}: single-session service differs from direct execute"
    );
    assert_eq!(solo.store, svc.store, "{name}: final instance data differs");
}

/// An opaque-functor program (from the safety matrix): one identity
/// launch and one opaque reversed-write launch, forcing the dynamic
/// check path.
fn opaque_program() -> Program {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let domain = Domain::range(8);
    let task = b.task_modeled("reverse_write");
    for functor in [
        b.identity_functor(),
        b.functor(ProjExpr::opaque(|p| DomainPoint::new1(7 - p.x()))),
    ] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: domain.clone(),
            reqs: vec![RegionReq {
                partition: blocks,
                functor,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    }
    b.build()
}

fn golden_apps() -> Vec<(&'static str, Rc<Program>)> {
    use index_launch::apps::{amr, circuit, pagerank, soleil, stencil};
    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 4,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 3,
        ..circuit::CircuitConfig::tiny(4)
    });
    let soleil = soleil::build(&soleil::SoleilConfig {
        iterations: 3,
        ..soleil::SoleilConfig::tiny((2, 1, 1))
    });
    let amr = amr::build(&amr::AmrConfig {
        epochs: 2,
        ..amr::AmrConfig::tiny()
    });
    let pagerank = pagerank::build(&pagerank::PagerankConfig::tiny(4));
    vec![
        ("stencil", Rc::new(stencil.program)),
        ("circuit", Rc::new(circuit.program)),
        ("soleil", Rc::new(soleil.program)),
        ("opaque", Rc::new(opaque_program())),
        ("amr", Rc::new(amr.program)),
        ("pagerank", Rc::new(pagerank.program)),
    ]
}

/// Transparency over the safety-matrix applications: validation mode
/// (real kernels, final data byte-compared), the same under fault
/// injection (the service's whole-machine fault plan restricted to one
/// slot equals the solo plan), and scale mode across the dcr × idx
/// axes.
#[test]
fn single_session_service_is_byte_identical_on_golden_apps() {
    for (name, program) in &golden_apps() {
        for (cname, cfg) in [
            ("validate", RuntimeConfig::validate(4)),
            ("validate+faults", RuntimeConfig::validate(4).with_faults(0x5AFE)),
            ("scale", RuntimeConfig::scale(4)),
            ("scale centralized", RuntimeConfig::scale(4).with_axes(false, true)),
            ("scale expanded", RuntimeConfig::scale(4).with_axes(true, false)),
        ] {
            assert_transparent(&format!("{name}/{cname}"), program, &cfg);
        }
    }
}

/// Transparency over a 100-seed slice of the differential-oracle
/// corpus (seeded random launch programs, scale mode).
#[test]
fn single_session_service_is_byte_identical_on_oracle_corpus() {
    for case in 0..100u64 {
        let seed = SplitMix64::mix(0xCAC4E, case);
        let program = Rc::new(generate_program(seed));
        assert_transparent(&format!("seed {seed:#x}"), &program, &RuntimeConfig::scale(2));
    }
}

/// A deterministic 8-session, 3-tenant workload over golden apps and
/// corpus programs, staggered arrivals.
fn mixed_workload(nodes: usize) -> Vec<SessionSpec> {
    let apps = golden_apps();
    let mut sessions = Vec::new();
    for i in 0..8usize {
        let program = if i % 2 == 0 {
            apps[(i / 2) % apps.len()].1.clone()
        } else {
            Rc::new(generate_program(SplitMix64::mix(0x5E61CE, i as u64)))
        };
        sessions.push(SessionSpec {
            tenant: (i % 3) as u32,
            priority: (i % 4) as u32,
            arrival: SimTime::us(20 * i as u64),
            program,
            config: RuntimeConfig::scale(nodes),
        });
    }
    sessions
}

fn run_service(sessions: &[SessionSpec], slots: usize, policy: &str) -> ServiceReport {
    let nodes = sessions[0].config.nodes;
    let mut svc = Service::new(
        ServiceConfig {
            slots,
            slot_nodes: nodes,
            queue_cap: 64,
            faults: None,
            replication_overrides: vec![],
        },
        policy_by_name(policy),
    );
    svc.run(sessions)
}

/// Pool-width invariance: per-session reports are identical at service
/// widths 1, 2, and 4 (fault-free). Warm state makes a tenant's later
/// sessions depend on its earlier ones, and width changes completion
/// order — so host-side warm counters may differ across widths; the
/// *simulated* observables may not. Distinct tenants per session keep
/// the whole report comparable here; warm-state width effects are the
/// isolation tier's subject.
#[test]
fn session_reports_are_invariant_across_pool_widths() {
    let mut sessions = mixed_workload(2);
    for (i, s) in sessions.iter_mut().enumerate() {
        s.tenant = i as u32; // one tenant per session: no warm coupling
    }
    let base = run_service(&sessions, 1, "fifo");
    assert!(base.rejected.is_empty());
    assert_eq!(base.sessions.len(), sessions.len());
    for slots in [2usize, 4] {
        let wide = run_service(&sessions, slots, "fifo");
        assert!(wide.rejected.is_empty());
        assert_eq!(wide.sessions.len(), base.sessions.len());
        for (a, b) in base.sessions.iter().zip(wide.sessions.iter()) {
            assert_eq!(a.submit_idx, b.submit_idx);
            assert_eq!(
                fingerprint(&a.report),
                fingerprint(&b.report),
                "session {}: report differs between widths 1 and {slots}",
                a.submit_idx
            );
            assert_eq!(a.report.store, b.report.store);
        }
    }
}

/// Deterministic replay: the same workload and service shape produce
/// bit-identical outcomes — schedule included — run after run.
#[test]
fn service_runs_are_deterministic() {
    let sessions = mixed_workload(2);
    for policy in ["fifo", "fair", "aged-priority"] {
        let a = run_service(&sessions, 2, policy);
        let b = run_service(&sessions, 2, policy);
        assert_eq!(a.makespan, b.makespan, "{policy}: makespan differs across runs");
        assert_eq!(a.rounds, b.rounds, "{policy}: round count differs");
        assert_eq!(a.rejected, b.rejected);
        for (x, y) in a.sessions.iter().zip(b.sessions.iter()) {
            assert_eq!(
                (x.submit_idx, x.admitted, x.finished, x.slot, x.wait_rounds),
                (y.submit_idx, y.admitted, y.finished, y.slot, y.wait_rounds),
                "{policy}: schedule differs across runs"
            );
            assert_eq!(fingerprint(&x.report), fingerprint(&y.report));
        }
    }
}

/// Per-tenant warm-state isolation (regression for the PR 4 analysis
/// cache and PR 6 trace recorder, which were process-global before
/// service mode made tenancy real): two tenants interleave sessions of
/// the *same* stencil program on one slot. Each tenant's second session
/// must be warmed by its own first session — carried-over analysis
/// verdicts (`warm_hits > 0`) and launch traces (`captured == 0`,
/// replay from the first iteration that validates) — while a tenant's
/// *first* session must look exactly cold no matter how many other
/// tenants ran the program before it. Warm state is host-side
/// memoization only, so all four runs stay simulation-identical.
#[test]
fn warm_state_is_isolated_per_tenant() {
    use index_launch::apps::stencil;
    let program = Rc::new(
        stencil::build(&stencil::StencilConfig {
            iterations: 6,
            ..stencil::StencilConfig::tiny((2, 2))
        })
        .program,
    );
    let cfg = RuntimeConfig::validate(4);
    let mut svc = Service::new(
        ServiceConfig {
            slots: 1,
            slot_nodes: cfg.nodes,
            queue_cap: 8,
            faults: None,
            replication_overrides: vec![],
        },
        policy_by_name("fifo"),
    );
    // Interleaved: A, B, A, B — one slot, so they serialize in order.
    let sessions: Vec<SessionSpec> = (0..4usize)
        .map(|i| SessionSpec {
            tenant: (i % 2) as u32,
            priority: 0,
            arrival: SimTime::us(i as u64),
            program: program.clone(),
            config: cfg.clone(),
        })
        .collect();
    let out = svc.run(&sessions);
    assert_eq!(out.sessions.len(), 4);
    let [a1, b1, a2, b2] = [
        &out.sessions[0].report,
        &out.sessions[1].report,
        &out.sessions[2].report,
        &out.sessions[3].report,
    ];

    // Simulated observables: identical everywhere (warm state is pure
    // host-side memoization).
    for (name, r) in [("b1", b1), ("a2", a2), ("b2", b2)] {
        assert_eq!(
            (a1.makespan, a1.tasks, a1.messages, a1.bytes, a1.stage_json().to_string()),
            (r.makespan, r.tasks, r.messages, r.bytes, r.stage_json().to_string()),
            "{name}: warm state changed simulated results"
        );
        assert_eq!(a1.store, r.store, "{name}: warm state changed final data");
    }

    // First sessions are cold — tenant B's must be bit-equal to tenant
    // A's despite A having already run the program (no cross-tenant
    // leak).
    assert_eq!(a1.analysis_cache.warm_hits, 0, "a tenant's first session cannot be warm");
    assert_eq!(b1.analysis_cache.warm_hits, 0, "tenant B warmed by tenant A's session");
    assert!(a1.trace_replay.captured > 0, "iterative app must capture a trace");
    assert_eq!(a1.trace_replay, b1.trace_replay, "tenant B's recorder saw tenant A's traces");
    assert_eq!(
        (a1.analysis_cache.hits, a1.analysis_cache.misses),
        (b1.analysis_cache.hits, b1.analysis_cache.misses),
        "tenant B's analysis cache saw tenant A's verdicts"
    );

    // Second sessions are warm: verdicts carried over and the captured
    // trace replays instead of being re-captured.
    for (name, warm, cold) in [("a2", a2, a1), ("b2", b2, b1)] {
        assert!(
            warm.analysis_cache.warm_hits > 0,
            "{name}: same-tenant resubmission must hit warm verdicts"
        );
        assert_eq!(
            warm.trace_replay.captured, 0,
            "{name}: warm session re-captured instead of replaying the carried trace"
        );
        assert!(
            warm.trace_replay.replayed > cold.trace_replay.replayed,
            "{name}: warm session must replay at least one extra iteration \
             (warm {:?} vs cold {:?})",
            warm.trace_replay,
            cold.trace_replay
        );
    }
    // Warm entries exist for both tenants, keyed separately.
    assert_eq!(svc.warm_entries(0), 1);
    assert_eq!(svc.warm_entries(1), 1);
}

/// Corruption blast radius: two tenants share a two-slot service under a
/// machine-global corruption schedule whose single corrupt node (seed 5
/// → machine node 6) sits in slot 1. Tenant 1 — the victim — holds a
/// replicate-2 service tier via `replication_overrides`; tenant 0 runs
/// un-tiered on slot 0. The victim's flips must be detected and its data
/// must converge, while the co-located tenant's whole report — schedule,
/// stage JSON, SDC counters, final store — is byte-equal to a solo run
/// of the same service with the victim absent. Corruption, like a crash,
/// is a single-tenant event.
#[test]
fn corruption_blast_radius_is_one_tenant() {
    use index_launch::runtime::{FaultConfig, ReplicationConfig};

    const SLOT_NODES: usize = 4;
    let seed = 5u64; // pinned: corrupt node 6, i.e. slot 1, not a slot base
    let fc = FaultConfig::corrupting(seed);
    let apps = golden_apps();
    let (spared_prog, victim_prog) = (apps[0].1.clone(), apps[1].1.clone());
    let session_cfg = RuntimeConfig::validate(SLOT_NODES).with_fault_config(fc.clone());
    let service_cfg = ServiceConfig {
        slots: 2,
        slot_nodes: SLOT_NODES,
        queue_cap: 4,
        faults: Some(fc.clone()),
        replication_overrides: vec![(1, ReplicationConfig::all(2))],
    };
    let spec = |tenant: u32, program: &Rc<Program>| SessionSpec {
        tenant,
        priority: 0,
        arrival: SimTime::ZERO,
        program: program.clone(),
        config: session_cfg.clone(),
    };
    // Fingerprint extended with the SDC counters this tier is about.
    let fp = |r: &RunReport| format!("{} sdc={:?}", fingerprint(r), r.sdc);

    // Solo baseline: the spared tenant alone on the *same* service shape
    // (same 8-node machine, same global fault plan, same overrides).
    let mut solo_svc = Service::new(service_cfg.clone(), policy_by_name("fifo"));
    let solo_out = solo_svc.run(&[spec(0, &spared_prog)]);
    assert_eq!(solo_out.sessions.len(), 1);
    assert_eq!(solo_out.sessions[0].slot, 0);
    let solo = &solo_out.sessions[0].report;

    // Co-located run: the victim joins on slot 1.
    let mut svc = Service::new(service_cfg, policy_by_name("fifo"));
    let out = svc.run(&[spec(0, &spared_prog), spec(1, &victim_prog)]);
    assert_eq!(out.sessions.len(), 2);
    assert_eq!(out.sessions[0].slot, 0);
    assert_eq!(out.sessions[1].slot, 1);
    let (spared, victim) = (&out.sessions[0].report, &out.sessions[1].report);

    // The victim actually suffers — and survives — the corruption.
    let victim_sdc = victim.sdc.clone().expect("victim carries SDC stats");
    assert!(
        victim_sdc.detected + victim_sdc.payload_detected > 0,
        "pinned seed must corrupt the victim's slot: {victim_sdc:?}"
    );
    assert_eq!(victim_sdc.escaped, 0, "victim's tier must catch every flip");
    let victim_clean = execute(&victim_prog, &RuntimeConfig::validate(SLOT_NODES));
    assert_eq!(victim.tasks, victim_clean.tasks);
    assert_eq!(
        victim.store, victim_clean.store,
        "victim must converge to its fault-free store"
    );

    // Blast radius: the spared tenant never notices the victim existed.
    let spared_sdc = spared.sdc.clone().expect("corrupting config carries SDC stats");
    assert_eq!(
        (spared_sdc.detected, spared_sdc.escaped, spared_sdc.payload_detected,
         spared_sdc.payload_escaped),
        (0, 0, 0, 0),
        "corruption leaked into the co-located tenant's slot: {spared_sdc:?}"
    );
    assert_eq!(
        fp(solo),
        fp(spared),
        "co-located tenant's report differs from its solo run"
    );
    assert_eq!(solo.store, spared.store, "co-located tenant's final data differs from solo");
}

/// Backpressure: a bounded pending queue rejects overload instead of
/// growing without bound, and every submission is either finished or
/// rejected — never lost.
#[test]
fn bounded_queue_rejects_overload_and_loses_nothing() {
    let mut sessions = mixed_workload(2);
    for s in sessions.iter_mut() {
        s.arrival = SimTime::ZERO; // all at once: queue fills instantly
    }
    let mut svc = Service::new(
        ServiceConfig {
            slots: 1,
            slot_nodes: 2,
            queue_cap: 3,
            faults: None,
            replication_overrides: vec![],
        },
        policy_by_name("fifo"),
    );
    let out = svc.run(&sessions);
    assert!(!out.rejected.is_empty(), "overload past queue_cap must reject");
    assert_eq!(
        out.sessions.len() + out.rejected.len(),
        sessions.len(),
        "every submission must finish or be rejected"
    );
    let mut seen: Vec<usize> = out
        .sessions
        .iter()
        .map(|s| s.submit_idx)
        .chain(out.rejected.iter().copied())
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (0..sessions.len()).collect::<Vec<_>>());
}
