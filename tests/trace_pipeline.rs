//! End-to-end checks of the per-stage runtime tracing and the pipeline
//! audits (credit conservation + slice-tree coverage).
//!
//! Three properties are pinned down here:
//!
//! 1. **Determinism** — two independent builds + runs of the same
//!    program produce byte-identical Chrome `about:tracing` JSON, and
//!    collecting the trace never changes the simulated result.
//! 2. **Accounting** — per-stage busy times are consistent with the
//!    makespan: each node's runtime-thread stages fit inside it,
//!    processor time is bounded by makespan × processor count, and the
//!    trace's own per-stage totals agree exactly with the report's for
//!    every stage the trace covers.
//! 3. **Audits** — the credit-conservation and slice-coverage audits
//!    pass on all four safety-matrix apps, under DCR and non-DCR.

use index_launch::apps::{circuit, soleil, stencil};
use index_launch::geometry::{Domain, DomainPoint};
use index_launch::machine::{MachineDesc, SimTime, Stage};
use index_launch::region::{equal_partition_1d, FieldKind, FieldSpaceDesc, Privilege};
use index_launch::analysis::ProjExpr;
use index_launch::runtime::{
    execute, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq, RunReport,
    RuntimeConfig,
};

fn tiny_stencil() -> Program {
    stencil::build(&stencil::StencilConfig {
        iterations: 2,
        ..stencil::StencilConfig::tiny((2, 2))
    })
    .program
}

/// The safety-matrix program whose second launch needs a dynamic check
/// (same construction as `safety_matrix.rs`), so the audits also run
/// over an op that went through the dynamic-check path.
fn opaque_program() -> Program {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let domain = Domain::range(8);
    let task = b.task("reverse_write", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            ctx.write(0, f, p, p.x() as f64);
        }
    });
    for functor in [
        b.identity_functor(),
        b.functor(ProjExpr::opaque(|p| DomainPoint::new1(7 - p.x()))),
    ] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: domain.clone(),
            reqs: vec![RegionReq {
                partition: blocks,
                functor,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    }
    b.build()
}

/// Minimal structural JSON validator: delimiters balance outside string
/// literals and the document is a single object.
fn assert_well_formed_json(s: &str) {
    let mut depth: Vec<char> = Vec::new();
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        if in_str {
            if escape {
                escape = false;
            } else if c == '\\' {
                escape = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth.push(c),
            '}' => assert_eq!(depth.pop(), Some('{'), "unbalanced '}}'"),
            ']' => assert_eq!(depth.pop(), Some('['), "unbalanced ']'"),
            _ => {}
        }
    }
    assert!(!in_str, "unterminated string literal");
    assert!(depth.is_empty(), "unclosed delimiters: {depth:?}");
    assert!(s.trim_start().starts_with('{') && s.trim_end().ends_with('}'));
}

#[test]
fn chrome_trace_is_deterministic_and_well_formed() {
    let run = || {
        let program = tiny_stencil();
        let config = RuntimeConfig::validate(4).with_trace(true).with_audit(true);
        let report = execute(&program, &config);
        let trace = report.trace.as_ref().expect("trace requested");
        assert!(!trace.is_empty(), "trace collected no events");
        (report.makespan, report.messages, trace.to_chrome_trace())
    };
    let (mk1, msg1, json1) = run();
    let (mk2, msg2, json2) = run();
    assert_eq!(json1, json2, "chrome trace must be deterministic across identical runs");
    assert_eq!((mk1, msg1), (mk2, msg2));
    assert_well_formed_json(&json1);
    assert!(json1.contains("\"traceEvents\""));
    assert!(json1.contains("\"ph\"") && json1.contains("\"X\""));
    assert!(json1.contains("\"thread_name\""));

    // Observability is free: the identical run without the trace (and
    // without audits) reaches the same makespan and message count.
    let plain = execute(&tiny_stencil(), &RuntimeConfig::validate(4).with_audit(false));
    assert!(plain.trace.is_none());
    assert_eq!(plain.makespan, mk1, "trace collection changed simulated time");
    assert_eq!(plain.messages, msg1, "trace collection changed traffic");
}

fn check_stage_accounting(report: &RunReport, nodes: usize) {
    let makespan = report.makespan;
    let machine = MachineDesc::piz_daint(nodes);
    let procs = machine.cpus_per_node + machine.gpus_per_node;
    // Sparse rows: sorted by node id, in range, and only nonzero totals.
    assert!(report.node_stage_busy.len() <= nodes);
    assert!(report.node_stage_busy.windows(2).all(|w| w[0].0 < w[1].0));
    for &(n, ref totals) in report.node_stage_busy.iter() {
        assert!(n < nodes, "sparse row for out-of-range node {n}");
        assert!(totals.sum() > SimTime::ZERO, "node {n}: zero row should be omitted");
        // Runtime-thread stages share one thread per node.
        let thread: SimTime = Stage::ALL
            .into_iter()
            .filter(|s| *s != Stage::Exec)
            .map(|s| totals.get(s))
            .sum();
        assert!(thread <= makespan, "node {n}: runtime stages {thread} > makespan {makespan}");
        // Processor time is bounded by makespan × processors.
        assert!(totals.get(Stage::Exec) <= makespan * procs as u64, "node {n}: exec overflow");
    }
    // The analytic issuance timeline also fits inside the run: the last
    // op clears logical analysis before its tasks can run.
    let issuance_side = report.stage_busy.get(Stage::Issuance)
        + report.stage_busy.get(Stage::Logical)
        + report.stage_busy.get(Stage::DynamicChecks);
    assert!(issuance_side <= makespan, "issuance timeline {issuance_side} > makespan {makespan}");
    assert!(report.issuance_span <= makespan);
    // Nothing ran untagged.
    assert_eq!(report.stage_busy.get(Stage::Other), SimTime::ZERO);

    // The trace's per-stage totals agree exactly with the report for
    // every stage the trace covers (network handler charges carry no
    // per-event attribution, so Network is excluded).
    let trace_totals = report.trace.as_ref().expect("trace requested").stage_totals();
    for stage in [
        Stage::Issuance,
        Stage::Logical,
        Stage::Distribution,
        Stage::Physical,
        Stage::Exec,
        Stage::DynamicChecks,
    ] {
        assert_eq!(
            trace_totals.get(stage),
            report.stage_busy.get(stage),
            "trace and report disagree on {}",
            stage.name()
        );
    }
}

#[test]
fn stage_times_fit_makespan_with_dcr() {
    let nodes = 4;
    let report = execute(
        &tiny_stencil(),
        &RuntimeConfig::validate(nodes).with_trace(true).with_audit(true),
    );
    check_stage_accounting(&report, nodes);
    assert!(report.audit.expect("audit requested").credits_paid > 0);
}

#[test]
fn stage_times_fit_makespan_without_dcr() {
    let nodes = 4;
    let report = execute(
        &tiny_stencil(),
        &RuntimeConfig::validate(nodes)
            .with_axes(false, true)
            .with_trace(true)
            .with_audit(true),
    );
    check_stage_accounting(&report, nodes);
    // Non-DCR distribution is explicit messages; some must be tagged.
    let dist_msgs = report.stage_messages[Stage::Distribution.index()]
        + report.stage_messages[Stage::Network.index()];
    assert!(dist_msgs > 0, "non-DCR run sent no tagged messages");
}

#[test]
fn audits_pass_on_all_safety_matrix_apps() {
    let apps: Vec<(&str, Program)> = vec![
        (
            "stencil",
            tiny_stencil(),
        ),
        (
            "circuit",
            circuit::build(&circuit::CircuitConfig {
                iterations: 2,
                ..circuit::CircuitConfig::tiny(4)
            })
            .program,
        ),
        (
            "soleil",
            soleil::build(&soleil::SoleilConfig {
                iterations: 2,
                ..soleil::SoleilConfig::tiny((2, 1, 1))
            })
            .program,
        ),
        ("opaque", opaque_program()),
    ];
    for (name, program) in &apps {
        for dcr in [true, false] {
            for tracing in [true, false] {
                let config = RuntimeConfig::validate(2)
                    .with_axes(dcr, true)
                    .with_tracing(tracing)
                    .with_audit(true);
                let report = execute(program, &config);
                let audit = report
                    .audit
                    .unwrap_or_else(|| panic!("{name}: audit report missing"));
                assert!(audit.credits_paid > 0 || report.tasks <= 1, "{name}: no credits audited");
                if !dcr && !tracing {
                    // Compact slices actually scattered: the coverage
                    // audit must have verified them.
                    assert!(audit.slices_covered > 0, "{name}: dcr={dcr} tracing={tracing}");
                }
            }
        }
    }
}
