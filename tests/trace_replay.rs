//! Trace capture & replay must be pure memoization of the expansion
//! pipeline: with replay on (the default) and off, every program
//! produces identical verdicts, identical dependence structure,
//! identical simulated time — byte-identical [`RunReport::stage_json`]
//! output and identical final instance data. The only permitted
//! difference is the host-side [`TraceReplayStats`] accounting.
//!
//! Locked in over the 500-seed differential-oracle corpus, the four
//! safety-matrix applications (swept across the dcr × idx × tracing
//! axes), a pinned capture → replay → invalidate lifecycle on a
//! hand-built iterative program, and pool-width invariance of replayed
//! runs.

use il_oracle::generate_program;
use il_testkit::SplitMix64;
use index_launch::machine::{SimTime, Stage};
use index_launch::prelude::*;
use index_launch::runtime::{
    execute, expand_program, CostSpec, IndexLaunchDesc, Program, ProgramBuilder, RegionReq,
    RunReport, RuntimeConfig, ThreadPool, TraceMarkKind, TraceReplayStats,
};

const NODES: usize = 2;

/// Everything observable about a run, as one comparable value. String
/// rather than struct so assertion failures print the full diff.
fn fingerprint(r: &RunReport) -> String {
    format!(
        "makespan={} tasks={} messages={} bytes={} dyn={} stages={}",
        r.makespan.as_ns(),
        r.tasks,
        r.messages,
        r.bytes,
        r.dynamic_check_time.as_ns(),
        r.stage_json().to_string(),
    )
}

/// Execute `program` with replay on and off and assert the runs are
/// observationally identical. Returns the replay-on stats.
fn assert_replay_transparent(
    name: &str,
    program: &Program,
    cfg_on: &RuntimeConfig,
) -> TraceReplayStats {
    let cfg_off = cfg_on.clone().with_trace_replay(false);

    let exp_on = expand_program(program, cfg_on);
    let exp_off = expand_program(program, &cfg_off);
    assert_eq!(exp_on.safety, exp_off.safety, "{name}: verdicts differ with replay on/off");
    assert_eq!(exp_on.len(), exp_off.len(), "{name}: task counts differ");

    let on = execute(program, cfg_on);
    let off = execute(program, &cfg_off);
    assert_eq!(
        fingerprint(&on),
        fingerprint(&off),
        "{name}: observable run differs with replay on/off"
    );
    assert_eq!(on.store, off.store, "{name}: final data differs with replay on/off");

    // The off run must be a true control: subsystem disabled, dormant.
    assert!(!off.trace_replay.enabled, "{name}: off run reports replay enabled");
    assert_eq!(
        (off.trace_replay.captured, off.trace_replay.replayed, off.trace_replay.invalidated),
        (0, 0, 0),
        "{name}: off run did trace work"
    );
    assert!(on.trace_replay.enabled, "{name}: on run reports replay disabled");
    on.trace_replay
}

/// 500 seeded random launch programs (the differential-oracle corpus
/// generator): replay on and off agree everywhere. (The generator
/// rarely produces a periodic launch sequence, so replay counts are
/// not asserted here — the iterative-apps test below pins that replay
/// actually fires.)
#[test]
fn corpus_runs_identically_with_replay_on_and_off() {
    for case in 0..500u64 {
        let seed = SplitMix64::mix(0xCAC4E, case);
        let program = generate_program(seed);
        assert_replay_transparent(
            &format!("seed {seed:#x}"),
            &program,
            &RuntimeConfig::scale(NODES),
        );
    }
}

/// The four safety-matrix applications in validation mode (real
/// kernels, final data compared). The iterative apps re-issue the same
/// launch sequence every timestep, so traces must actually replay; the
/// equivalence assertions prove the replays change nothing observable.
#[test]
fn safety_matrix_apps_run_identically_with_replay_on_and_off() {
    use index_launch::apps::{amr, circuit, pagerank, soleil, stencil};

    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 6,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 5,
        ..circuit::CircuitConfig::tiny(4)
    });
    let soleil = soleil::build(&soleil::SoleilConfig {
        iterations: 4,
        ..soleil::SoleilConfig::tiny((2, 1, 1))
    });
    let amr = amr::build(&amr::AmrConfig::tiny());
    let pagerank = pagerank::build(&pagerank::PagerankConfig::tiny(4));
    let opaque = opaque_program();

    for (name, program, want_replay) in [
        ("stencil", &stencil.program, true),
        ("circuit", &circuit.program, true),
        ("soleil", &soleil.program, true),
        // AMR invalidates at every regrid boundary but replays within
        // each epoch; pagerank replays its dynamic-verdict loop whole.
        ("amr", &amr.program, true),
        ("pagerank", &pagerank.program, true),
        ("opaque", &opaque, false),
    ] {
        let stats = assert_replay_transparent(name, program, &RuntimeConfig::validate(4));
        if want_replay {
            assert!(stats.captured > 0, "{name}: iterative app never captured a trace");
            assert!(stats.replayed > 0, "{name}: iterative app never replayed a trace");
            assert!(stats.analyses_skipped > 0, "{name}: replay skipped no analyses");
        }
    }
}

/// Replay transparency holds on every cell of the evaluation's
/// configuration space: dcr × idx × tracing, at scale-mode node counts.
/// (Legion-style tracing reattributes logical-analysis time to
/// [`Stage::TraceReplay`] identically on both sides, so stage reports
/// still match byte-for-byte.)
#[test]
fn replay_is_transparent_across_dcr_idx_tracing_axes() {
    use index_launch::apps::{amr, circuit, pagerank, stencil};

    let stencil = stencil::build(&stencil::StencilConfig {
        iterations: 6,
        ..stencil::StencilConfig::tiny((2, 2))
    });
    let circuit = circuit::build(&circuit::CircuitConfig {
        iterations: 4,
        ..circuit::CircuitConfig::tiny(4)
    });
    let amr = amr::build(&amr::AmrConfig {
        epochs: 2,
        ..amr::AmrConfig::tiny()
    });
    let pagerank = pagerank::build(&pagerank::PagerankConfig::tiny(4));

    for (name, program) in [
        ("stencil", &stencil.program),
        ("circuit", &circuit.program),
        ("amr", &amr.program),
        ("pagerank", &pagerank.program),
    ] {
        for dcr in [false, true] {
            for idx in [false, true] {
                for tracing in [false, true] {
                    let cfg = RuntimeConfig::scale(8).with_axes(dcr, idx).with_tracing(tracing);
                    assert_replay_transparent(
                        &format!("{name} dcr={dcr} idx={idx} tracing={tracing}"),
                        program,
                        &cfg,
                    );
                }
            }
        }
    }
}

/// A hand-built iterative program: one setup launch, then `clean`
/// iterations of a two-launch loop body, then `mutated` iterations
/// whose second launch uses a different projection functor (the
/// paper's "any change to the loop body invalidates the trace" case).
/// 8-point launches over an 8-piece partition of a 32-cell region.
fn iterative_program(clean: usize, mutated: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("f", FieldKind::F64);
    let g = fsd.add("g", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let init = b.task_modeled("init");
    let step_w = b.task_modeled("step_w");
    let step_r = b.task_modeled("step_r");
    let identity = b.identity_functor();
    let shift1 = b.functor(ProjExpr::Modular { a: 1, b: 1, m: 8 });
    let shift2 = b.functor(ProjExpr::Modular { a: 1, b: 2, m: 8 });

    let req = |functor, privilege, field| RegionReq {
        partition: blocks,
        functor,
        privilege,
        fields: vec![field],
        tree: region.tree,
        field_space: fs,
    };
    let launch = |b: &mut ProgramBuilder, task, reqs| {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: Domain::range(8),
            reqs,
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    };

    launch(&mut b, init, vec![req(identity, Privilege::Write, f)]);
    for iter in 0..clean + mutated {
        let shift = if iter < clean { shift1 } else { shift2 };
        launch(&mut b, step_w, vec![req(identity, Privilege::Write, f)]);
        launch(
            &mut b,
            step_r,
            vec![req(identity, Privilege::Read, f), req(shift, Privilege::Write, g)],
        );
    }
    b.build()
}

/// Pinned lifecycle, clean loop: setup + 6 identical iterations of a
/// 2-launch body. The rolling window detects the period at op 3
/// (`keys[1..3] == keys[3..5]`), captures that window while expanding
/// it normally, and replays the remaining 4 iterations — skipping 8
/// launch analyses and splicing in 64 point tasks. Nothing ever
/// invalidates.
#[test]
fn pinned_lifecycle_capture_then_steady_replay() {
    let program = iterative_program(6, 0);
    let cfg = RuntimeConfig::scale(NODES);
    let exp = expand_program(&program, &cfg);

    assert_eq!(
        exp.trace_replay,
        TraceReplayStats {
            enabled: true,
            captured: 1,
            replayed: 4,
            invalidated: 0,
            analyses_skipped: 8,
            tasks_replayed: 64,
        },
        "clean iterative loop: lifecycle counts drifted"
    );
    let marks: Vec<_> = exp.trace_marks.iter().map(|m| (m.op, m.len, m.kind)).collect();
    assert_eq!(
        marks,
        vec![
            (3, 2, TraceMarkKind::Captured),
            (5, 2, TraceMarkKind::Replayed),
            (7, 2, TraceMarkKind::Replayed),
            (9, 2, TraceMarkKind::Replayed),
            (11, 2, TraceMarkKind::Replayed),
        ],
        "clean iterative loop: mark sequence drifted"
    );

    // The report carries the same stats (no faults, so the simulated
    // run adds no invalidations), and the run itself is transparent.
    let stats = assert_replay_transparent("pinned-clean", &program, &cfg);
    assert_eq!(stats, exp.trace_replay);
}

/// Pinned lifecycle, mutated loop: 4 clean iterations then 3 whose
/// second launch swaps its projection functor. The stored trace is
/// invalidated the moment its first key reappears with a different
/// continuation (op 9), the new body is re-captured (op 11), and
/// steady-state replay resumes — never a stale replay.
#[test]
fn pinned_lifecycle_mutation_invalidates_and_recaptures() {
    let program = iterative_program(4, 3);
    let cfg = RuntimeConfig::scale(NODES);
    let exp = expand_program(&program, &cfg);

    assert_eq!(
        exp.trace_replay,
        TraceReplayStats {
            enabled: true,
            captured: 2,
            replayed: 3,
            invalidated: 1,
            analyses_skipped: 6,
            tasks_replayed: 48,
        },
        "mutated iterative loop: lifecycle counts drifted"
    );
    let marks: Vec<_> = exp.trace_marks.iter().map(|m| (m.op, m.len, m.kind)).collect();
    assert_eq!(
        marks,
        vec![
            (3, 2, TraceMarkKind::Captured),
            (5, 2, TraceMarkKind::Replayed),
            (7, 2, TraceMarkKind::Replayed),
            (9, 1, TraceMarkKind::Invalidated),
            (11, 2, TraceMarkKind::Captured),
            (13, 2, TraceMarkKind::Replayed),
        ],
        "mutated iterative loop: mark sequence drifted"
    );

    assert_replay_transparent("pinned-mutated", &program, &cfg);
}

/// Pinned lifecycle on the AMR application's regrid cadence (tiny: 3
/// epochs of 4 timesteps, alternating the coarse and fine partition
/// pair). Each timestep issues the same 3-launch body (flag, step,
/// copy), so the rolling window captures one iteration per epoch; at
/// every regrid boundary the epoch-invariant `flag` launch re-issues
/// the stored trace's first key with a *different* continuation (the
/// step/copy launches switch partition pairs), so the trace is
/// invalidated and the new epoch's body re-captured — exactly one
/// invalidation per regrid, never a stale replay. Counter- and
/// mark-pinned so a drift in capture cadence, invalidation placement,
/// or replay coverage shows up as a diff here.
#[test]
fn pinned_amr_regrid_lifecycle_invalidates_and_recaptures() {
    use index_launch::apps::amr;

    let app = amr::build(&amr::AmrConfig::tiny());
    let cfg = RuntimeConfig::validate(4);
    let exp = expand_program(&app.program, &cfg);

    assert_eq!(
        exp.trace_replay,
        TraceReplayStats {
            enabled: true,
            captured: 3,
            replayed: 6,
            invalidated: 2,
            analyses_skipped: 18,
            tasks_replayed: 66,
        },
        "amr regrid cadence: lifecycle counts drifted"
    );
    let marks: Vec<_> = exp.trace_marks.iter().map(|m| (m.op, m.len, m.kind)).collect();
    assert_eq!(
        marks,
        vec![
            // Epoch 0 (coarse): capture at the loop's first repetition,
            // replay the remaining two timesteps (9 tasks per window).
            (4, 3, TraceMarkKind::Captured),
            (7, 3, TraceMarkKind::Replayed),
            (10, 3, TraceMarkKind::Replayed),
            // Regrid to fine: `flag`'s key reappears with a different
            // continuation — invalidate, then re-capture the fine body
            // (15 tasks per window: 3 flag + 6 step + 6 copy).
            (13, 1, TraceMarkKind::Invalidated),
            (16, 3, TraceMarkKind::Captured),
            (19, 3, TraceMarkKind::Replayed),
            (22, 3, TraceMarkKind::Replayed),
            // Regrid back to coarse: the fine trace dies the same way.
            (25, 1, TraceMarkKind::Invalidated),
            (28, 3, TraceMarkKind::Captured),
            (31, 3, TraceMarkKind::Replayed),
            (34, 3, TraceMarkKind::Replayed),
        ],
        "amr regrid cadence: mark sequence drifted"
    );

    // And the whole cadence is observationally replay-transparent.
    let stats = assert_replay_transparent("amr", &app.program, &cfg);
    assert_eq!(stats, exp.trace_replay);
}

/// Capture/replay/invalidate markers surface in the execution trace as
/// zero-duration [`Stage::TraceReplay`] events at the issuing
/// frontier, one per mark, in op order.
#[test]
fn lifecycle_markers_surface_in_trace_log() {
    let program = iterative_program(6, 0);
    let report = execute(&program, &RuntimeConfig::scale(NODES).with_trace(true));
    let trace = report.trace.as_ref().expect("trace requested");
    let markers: Vec<_> = trace
        .events()
        .iter()
        .filter(|e| e.stage == Stage::TraceReplay && e.duration == SimTime::ZERO)
        .map(|e| e.op)
        .collect();
    assert_eq!(markers, vec![3, 5, 7, 9, 11], "one marker event per lifecycle mark");
}

/// The host-side accounting is bookkeeping only: none of it leaks into
/// the wire-format stage report that equivalence tiers compare.
#[test]
fn replay_stats_stay_out_of_stage_json() {
    let program = iterative_program(6, 0);
    let report = execute(&program, &RuntimeConfig::scale(NODES));
    assert!(report.trace_replay.replayed > 0);
    let json = report.stage_json().to_string();
    for key in ["captured", "replayed", "invalidated", "analyses_skipped", "tasks_replayed"] {
        assert!(!json.contains(key), "stage_json leaked replay stat {key:?}: {json}");
    }
}

/// Replayed runs are thread-count invariant: fanning the corpus and the
/// pinned iterative program over worker pools of different widths
/// yields identical fingerprints in identical order (each simulation is
/// a pure function of its inputs; the pool maps results back in
/// submission order).
#[test]
fn replayed_runs_are_pool_width_invariant() {
    let sweep = |threads: usize| -> Vec<String> {
        let pool = ThreadPool::new(threads);
        let mut jobs: Vec<Box<dyn FnOnce() -> String + Send>> = (0..8_u64)
            .map(|case| {
                Box::new(move || {
                    let program = generate_program(SplitMix64::mix(0xCAC4E, case));
                    fingerprint(&execute(&program, &RuntimeConfig::scale(NODES)))
                }) as Box<dyn FnOnce() -> String + Send>
            })
            .collect();
        jobs.push(Box::new(|| {
            let program = iterative_program(6, 0);
            fingerprint(&execute(&program, &RuntimeConfig::scale(NODES)))
        }));
        pool.map(jobs)
    };
    let one = sweep(1);
    let four = sweep(4);
    assert_eq!(one, four, "replayed sweep must not depend on pool width");
}

/// An opaque-functor program (from the safety matrix): one identity
/// launch and one opaque reversed-write launch, forcing the dynamic
/// check path; aperiodic, so no trace ever captures.
fn opaque_program() -> Program {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let f = fsd.add("x", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(32), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 8);
    let domain = Domain::range(8);
    let task = b.task_modeled("reverse_write");
    for functor in [
        b.identity_functor(),
        b.functor(ProjExpr::opaque(|p| DomainPoint::new1(7 - p.x()))),
    ] {
        b.index_launch(IndexLaunchDesc {
            task,
            domain: domain.clone(),
            reqs: vec![RegionReq {
                partition: blocks,
                functor,
                privilege: Privilege::Write,
                fields: vec![f],
                tree: region.tree,
                field_space: fs,
            }],
            scalars: vec![],
            cost: CostSpec::Uniform(SimTime::us(10)),
            shard: None,
        });
    }
    b.build()
}
