//! Cross-crate integration: compiler pass → runtime execution → data,
//! and the end-to-end invariant of the programming model — every runtime
//! configuration computes the same answer.

use index_launch::compiler::{lower_plan, optimize_loop, Plan, RegionArg, TaskLoop};
use index_launch::prelude::*;

/// Drive the full stack: write "source" loops in the compiler IR, let the
/// optimizer decide, lower onto the runtime, execute, and verify data.
#[test]
fn compiler_to_runtime_roundtrip() {
    let mut b = ProgramBuilder::new();
    let mut fsd = FieldSpaceDesc::new();
    let val = fsd.add("val", FieldKind::F64);
    let fs = b.forest.create_field_space(fsd);
    let region = b.forest.create_region(Domain::range(40), fs);
    let blocks = equal_partition_1d(&mut b.forest, region.space, 4);

    let bump = b.task("bump", move |ctx| {
        let pts: Vec<_> = ctx.domain(0).iter().collect();
        for p in pts {
            let v: f64 = ctx.read(0, val, p);
            ctx.write(0, val, p, v + 1.0);
        }
    });

    let arg = |functor, privilege| RegionArg {
        name: "p".into(),
        partition: blocks,
        functor,
        privilege,
        fields: vec![],
        tree: region.tree,
        field_space: fs,
    };

    // Loop A: statically safe (identity). Loop B: needs the dynamic check
    // (opaque but injective). Loop C: statically unsafe (i % 2 written
    // over [0,4)) — stays a sequential task loop.
    let loop_a = TaskLoop {
        task_name: "bump".into(),
        domain: Domain::range(4),
        args: vec![arg(ProjExpr::Identity, Privilege::ReadWrite)],
        body: vec![],
    };
    let loop_b = TaskLoop {
        args: vec![arg(
            ProjExpr::opaque(|p| DomainPoint::new1(3 - p.x())),
            Privilege::ReadWrite,
        )],
        ..loop_a.clone()
    };
    let loop_c = TaskLoop {
        args: vec![arg(ProjExpr::Modular { a: 1, b: 0, m: 2 }, Privilege::ReadWrite)],
        ..loop_a.clone()
    };

    let plan_a = optimize_loop(&b.forest, &loop_a);
    let plan_b = optimize_loop(&b.forest, &loop_b);
    let plan_c = optimize_loop(&b.forest, &loop_c);
    assert!(matches!(plan_a, Plan::IndexLaunch { .. }));
    assert!(matches!(plan_b, Plan::Guarded { .. }));
    assert!(matches!(plan_c, Plan::Sequential { .. }));

    let ops_a = lower_plan(&mut b, &plan_a, &loop_a, bump, SimTime::us(20));
    let ops_b = lower_plan(&mut b, &plan_b, &loop_b, bump, SimTime::us(20));
    let ops_c = lower_plan(&mut b, &plan_c, &loop_c, bump, SimTime::us(20));
    assert_eq!((ops_a, ops_b, ops_c), (1, 1, 4));

    let program = b.build();
    let report = execute(&program, &RuntimeConfig::validate(2));
    // A bumps every block once, B once (reversed blocks), C bumps blocks
    // 0 and 1 twice each.
    let store = report.store.unwrap();
    let root = program.forest.tree_root(region.tree);
    let part = program.forest.space(root).partitions[0];
    let mut sum = 0.0;
    for &space in program.forest.partition(part).children.values() {
        let inst = store.get((region.tree, space)).unwrap();
        for p in program.forest.domain(space).iter() {
            sum += inst.get::<f64>(val, p);
        }
    }
    // 40 elements: +1 (A) +1 (B) = 80, plus C: 4 singleton launches over
    // blocks i%2 -> blocks 0,1 bumped twice = 4 launches × 10 elems = 40.
    assert_eq!(sum, 120.0);
}

/// The paper's three applications all agree with their references under
/// a non-default machine size, exercising real cross-node copies,
/// reductions, and the DOM dynamic checks in one test.
#[test]
fn all_apps_validate_on_three_nodes() {
    use index_launch::apps::{circuit, soleil, stencil};

    let cc = circuit::CircuitConfig::tiny(6);
    let capp = circuit::build(&cc);
    let crep = execute(&capp.program, &RuntimeConfig::validate(3));
    let got = circuit::extract_voltages(&capp, &crep);
    let want = circuit::reference(&cc, &capp.wires);
    for (a, b) in got.iter().zip(&want) {
        assert!((a - b).abs() < 1e-9);
    }

    let sc = stencil::StencilConfig::tiny((2, 2));
    let sapp = stencil::build(&sc);
    let srep = execute(&sapp.program, &RuntimeConfig::validate(3));
    let got = stencil::extract_fout(&sapp, &srep);
    let want = stencil::reference(&sc);
    for (a, b) in got.iter().zip(&want) {
        assert!((a - b).abs() < 1e-9);
    }

    let oc = soleil::SoleilConfig::tiny((2, 2, 1));
    let oapp = soleil::build(&oc);
    let orep = execute(&oapp.program, &RuntimeConfig::validate(3));
    let got = soleil::extract_u(&oapp, &orep);
    let want = soleil::reference(&oc);
    for (a, b) in got.iter().zip(&want) {
        assert!((a - b).abs() < 1e-12);
    }
}

/// Determinism across the whole stack: the same program yields the same
/// simulated timings and message counts every run.
#[test]
fn whole_stack_determinism() {
    use index_launch::apps::soleil;
    let config = soleil::SoleilConfig::tiny((2, 2, 2));
    let runs: Vec<(u64, u64, u64)> = (0..2)
        .map(|_| {
            let app = soleil::build(&config);
            let rep = execute(&app.program, &RuntimeConfig::validate(4));
            (rep.makespan.as_ns(), rep.messages, rep.bytes)
        })
        .collect();
    assert_eq!(runs[0], runs[1]);
}

/// The `forall` API and raw launch descriptors produce identical
/// programs.
#[test]
fn forall_equals_manual_descriptor() {
    let build = |use_forall: bool| {
        let mut b = ProgramBuilder::new();
        let mut fsd = FieldSpaceDesc::new();
        let val = fsd.add("v", FieldKind::F64);
        let fs = b.forest.create_field_space(fsd);
        let region = b.forest.create_region(Domain::range(8), fs);
        let blocks = equal_partition_1d(&mut b.forest, region.space, 2);
        let t = b.task("w", move |ctx| {
            let pts: Vec<_> = ctx.domain(0).iter().collect();
            for p in pts {
                ctx.write(0, val, p, 1.0);
            }
        });
        if use_forall {
            Forall::new(t, Domain::range(2))
                .arg(blocks, ProjExpr::Identity, Privilege::Write, region.tree, fs)
                .cost(SimTime::us(5))
                .launch(&mut b);
        } else {
            let ident = b.identity_functor();
            b.index_launch(IndexLaunchDesc {
                task: t,
                domain: Domain::range(2),
                reqs: vec![RegionReq {
                    partition: blocks,
                    functor: ident,
                    privilege: Privilege::Write,
                    fields: vec![],
                    tree: region.tree,
                    field_space: fs,
                }],
                scalars: vec![],
                cost: CostSpec::Uniform(SimTime::us(5)),
                shard: None,
            });
        }
        let program = b.build();
        execute(&program, &RuntimeConfig::validate(2)).makespan
    };
    assert_eq!(build(true), build(false));
}
